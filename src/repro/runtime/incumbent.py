"""Cross-shard shared incumbent for branch-and-bound pruning.

The pruned brute-force enumerations (:mod:`repro.baselines.brute_force`)
skip a chunk row when an admissible lower bound on its cost exceeds the best
cost any shard has *achieved* so far — the **incumbent**.  Serially that is
one float threaded through the chunk loop; across a worker pool it must be a
value every worker can read cheaply and tighten safely, because one shard
finding a good subset early should shrink every other shard's work.

This module owns that value.  The design constraints:

* **correctness does not depend on freshness** — a stale (too high)
  incumbent only prunes less; exactness needs just one invariant, that every
  value ever stored is a cost *achieved* by a feasible solution (the seed or
  a fully evaluated row), hence an upper bound on the optimum;
* **reads must never tear** — a torn read could yield garbage *below* the
  optimum and over-prune, so the threshold read takes the slot lock.  Chunk
  tasks read once per chunk (``handle.value()``), which keeps the lock out
  of the per-row hot path entirely;
* **writes are lock-light compare-and-swap** — a proposal first peeks at the
  raw value without the lock (a stale peek costs at most one missed
  publication, never correctness) and only acquires the lock to re-check and
  write when it still looks like an improvement.  Improvements are rare by
  construction (costs of enumerated rows rarely descend), so the lock is
  effectively uncontended.

Topology
--------
One process-wide *slot* (a ``multiprocessing.Value('d')`` plus a generation
counter sharing its lock) is created in the parent **before** the persistent
pool spawns, so fork workers inherit it and spawn workers receive it through
the pool initializer (:mod:`repro.runtime.pool` passes
:func:`slot_handles` / :func:`adopt_slot`).  Each
:func:`~repro.runtime.parallel.parallel_map` call that wants pruning
activates a fresh *generation* with a seed value and ships a small picklable
:class:`IncumbentToken` inside every chunk dispatch tuple; workers bind the
token to the inherited slot and expose it to the chunk task via
:func:`active`.  A generation mismatch (a stale bind) degrades to the
token's seed — less pruning, identical results.  Serial execution binds a
plain in-process :class:`SerialIncumbent` instead and never touches
``multiprocessing`` at all.
"""

from __future__ import annotations

import math
import os
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterator

from ..bounds.lower_bounds import prune_margin
from ..sanitize import lock_san


@dataclass(frozen=True)
class IncumbentToken:
    """Picklable reference to one activation of the shared slot.

    Rides inside every chunk dispatch tuple of a pruned map.  ``seed`` is the
    incumbent value at activation (``inf`` when no heuristic seed exists), a
    floor the handle can always fall back to when the slot is missing or its
    generation moved on.
    """

    generation: int
    seed: float


class SerialIncumbent:
    """In-process incumbent for serial maps: one float, no multiprocessing."""

    __slots__ = ("_best",)

    def __init__(self, seed: float):
        self._best = float(seed)

    def value(self) -> float:
        """The current pruning threshold."""
        return self._best

    def propose(self, cost: float) -> None:
        """Record an achieved cost; keeps the minimum."""
        cost = float(cost)
        if cost < self._best:
            self._best = cost


class SharedIncumbent:
    """Worker-side (or parent-side) view of the shared slot for one token.

    Tracks a process-local best alongside the shared value, so pruning keeps
    working at full strength even if the slot vanished (fresh pool without
    initargs) or another generation took it over.
    """

    __slots__ = ("_slot", "_generation", "_best")

    def __init__(self, slot: "_Slot", token: IncumbentToken):
        self._slot = slot
        self._generation = token.generation
        self._best = float(token.seed)

    def value(self) -> float:
        """The freshest safe threshold: min of local best and the slot.

        Takes the slot lock — torn reads of the double could fabricate a
        value below the optimum and over-prune, which would break exactness.
        Chunk tasks call this once per chunk, so the lock never sits on a
        per-row path.
        """
        slot = self._slot
        # ``Synchronized.value`` would re-acquire the (non-reentrant) slot
        # lock; inside a held-lock section the raw ctypes objects are the
        # right access path.
        with slot.lock:
            if slot.generation.get_obj().value == self._generation:
                shared = slot.value.get_obj().value
            else:  # stale bind: fall back to what this process achieved
                shared = self._best
        if shared < self._best:
            self._best = shared
        return self._best

    def propose(self, cost: float) -> None:
        """Publish an achieved cost if it improves the shared incumbent.

        Lock-light: the unlocked peek may be stale (costing a missed
        publication or a redundant lock acquire) but the write itself
        re-checks under the lock, so the slot only ever decreases and only
        within the right generation.
        """
        cost = float(cost)
        if cost >= self._best:
            return
        self._best = cost
        slot = self._slot
        # repro: noqa[LOCK-DISCIPLINE] -- documented lock-light CAS: a torn/stale peek only costs a redundant lock acquire; the write re-checks under slot.lock below
        raw_value = slot.value.get_obj()
        if cost < raw_value.value:  # unlocked peek: stale is harmless here
            with slot.lock:
                if slot.generation.get_obj().value == self._generation and cost < raw_value.value:
                    raw_value.value = cost


#: Anything chunk tasks can prune against.
IncumbentHandle = SerialIncumbent | SharedIncumbent


def certified_gap(cost: float, outstanding_bound: float) -> float:
    """The sound relative optimality gap ``(cost - lb) / lb``.

    ``lb = min(cost, outstanding_bound) - prune_margin(...)`` is a valid
    lower bound on the optimum whenever ``cost`` is an achieved feasible
    cost and ``outstanding_bound`` lower-bounds every solution not yet
    (fully) evaluated: the optimum either lies in the evaluated set (then
    ``optimum <= cost`` and ``optimum >= `` the evaluated rows' admissible
    bounds, which the enumeration only prunes above ``cost`` + margin) or in
    the outstanding set (then ``optimum >= outstanding_bound``); subtracting
    the :func:`~repro.bounds.lower_bounds.prune_margin` slack absorbs the
    cross-kernel rounding exactly as pruning itself does.  The margin keeps
    the gap strictly positive while anything is outstanding, which is what
    makes ``gap_target=0`` provably never stop early (bit-identity).

    ``inf`` when no incumbent exists yet or the bound is non-positive (a
    non-positive denominator cannot certify a relative gap); ``0.0`` only
    once nothing is outstanding (callers pass ``outstanding_bound=inf``).
    """
    cost = float(cost)
    outstanding_bound = float(outstanding_bound)
    if outstanding_bound == float("inf"):
        # Nothing outstanding: the enumeration is complete, every pruned row
        # provably costs at least the incumbent, so the cost is the optimum.
        return 0.0
    lower = min(cost, outstanding_bound)
    if not math.isfinite(lower):
        return float("inf")
    lower -= prune_margin(lower)
    if cost <= lower:
        return 0.0
    if lower <= 0.0:
        return float("inf")
    return (float(cost) - lower) / lower


class GapTracker:
    """Live optimality-gap monitor for one best-first enumeration.

    Constructed by :func:`repro.runtime.parallel.parallel_map_ordered` when a
    ``gap_target`` is set; the submission loop asks :meth:`should_stop` with
    the minimum admissible bound over the chunks not yet submitted.  Stopping
    is sound *at submission time*: in-flight chunks still drain (they can
    only lower the final cost) and the never-submitted chunks are exactly the
    ones the bound covers, so the final ``(cost, lower_bound, gap)``
    certificate is at least as tight as the gap that triggered the stop.
    The gap is monotone in both inputs — the incumbent only decreases and,
    under ascending-bound submission, the outstanding minimum only increases
    — so the first ``True`` stays ``True``.
    """

    __slots__ = ("target", "hit", "_incumbent")

    def __init__(self, target: float, incumbent: IncumbentHandle):
        self.target = float(target)
        self.hit = False
        self._incumbent = incumbent

    def certified(self, outstanding_bound: float) -> float:
        """The gap if submission stopped now (reads the live incumbent)."""
        return certified_gap(self._incumbent.value(), outstanding_bound)

    def should_stop(self, outstanding_bound: float) -> bool:
        """True (sticky) once the certified gap reaches the target."""
        if not self.hit and self.certified(outstanding_bound) <= self.target:
            self.hit = True
        return self.hit


class _Slot:
    """The process-wide shared state: value + generation sharing one lock."""

    __slots__ = ("value", "generation", "lock", "pid")

    def __init__(self, value, generation, lock, pid: int):
        self.value = value
        self.generation = generation
        self.lock = lock
        self.pid = pid


_SLOT: _Slot | None = None
_ACTIVE: IncumbentHandle | None = None


def _fork_preferred_context():
    """Same start-method preference as :mod:`repro.runtime.pool`.

    Duplicated rather than imported to keep this module import-light and
    cycle-free (``pool`` imports ``incumbent``).
    """
    import multiprocessing

    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else "spawn")


def ensure_slot() -> _Slot:
    """The parent's slot, created lazily and re-created after a fork.

    Must run before the persistent pool spawns (the pool initializer ships
    the slot to the workers); :meth:`repro.runtime.pool.PersistentPool.ensure`
    guarantees that ordering.
    """
    global _SLOT
    if _SLOT is None or _SLOT.pid != os.getpid():
        context = _fork_preferred_context()
        lock = context.Lock()
        # ``Value`` needs the *raw* primitive (multiprocessing internals
        # re-wrap it); only the slot's own ``with slot.lock:`` uses go
        # through the (possibly LOCK-SAN-traced) wrapper.
        value = context.Value("d", float("inf"), lock=lock)
        generation = context.Value("q", 0, lock=lock)
        _SLOT = _Slot(
            value=value,
            generation=generation,
            lock=lock_san.wrap_lock(lock, "incumbent.slot"),
            pid=os.getpid(),
        )
    return _SLOT


def slot_handles() -> tuple:
    """The picklable pieces a pool initializer ships to spawn workers."""
    slot = ensure_slot()
    # Ship the raw lock: the TracedLock proxy is deliberately unpicklable;
    # each worker re-wraps its copy in adopt_slot.
    return (slot.value, slot.generation, lock_san.unwrap_lock(slot.lock))


def adopt_slot(handles: tuple | None) -> None:
    """Worker-side: install the slot received through the pool initializer."""
    global _SLOT
    if handles is None:
        return
    value, generation, lock = handles
    _SLOT = _Slot(
        value=value,
        generation=generation,
        lock=lock_san.wrap_lock(lock, "incumbent.slot"),
        pid=os.getpid(),
    )


def activate(seed: float) -> IncumbentToken:
    """Start a new generation at ``seed``; returns the token chunks carry.

    ``seed`` must be either ``inf`` or a cost achieved by a feasible
    solution of the enumeration being pruned — that is the whole exactness
    contract.
    """
    slot = ensure_slot()
    with slot.lock:
        raw_generation = slot.generation.get_obj()
        raw_generation.value += 1
        slot.value.get_obj().value = float(seed)
        generation = int(raw_generation.value)
    return IncumbentToken(generation=generation, seed=float(seed))


def parent_handle(token: IncumbentToken) -> SharedIncumbent:
    """A parent-side read/propose handle on the slot behind ``token``.

    The gap tracker of a best-first map lives in the *parent* (submission
    loop) while workers tighten the slot; this is the handle it reads the
    live incumbent through.
    """
    return SharedIncumbent(ensure_slot(), token)


def bind_token(token: IncumbentToken | None) -> None:
    """Make ``token`` the active incumbent for subsequent task calls.

    Called by the pool dispatch before every chunk task (cheap: allocates
    one small handle) and by the serial fallback paths.  ``None`` unbinds.
    """
    global _ACTIVE
    if token is None:
        _ACTIVE = None
    elif _SLOT is not None:
        _ACTIVE = SharedIncumbent(_SLOT, token)
    else:  # no slot in this process: prune against the seed alone
        _ACTIVE = SerialIncumbent(token.seed)


def active() -> IncumbentHandle | None:
    """The incumbent handle bound to the current task, if any."""
    return _ACTIVE


@contextmanager
def serial_incumbent(seed: float) -> Iterator[SerialIncumbent]:
    """Bind a :class:`SerialIncumbent` around an in-process chunk loop.

    Restores whatever was active before, so a pruned map nested inside
    another task (pool workers degrade nested maps to serial) cannot clobber
    the outer incumbent.
    """
    global _ACTIVE
    previous = _ACTIVE
    handle = SerialIncumbent(seed)
    _ACTIVE = handle
    try:
        yield handle
    finally:
        _ACTIVE = previous
