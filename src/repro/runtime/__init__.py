"""Process-parallel, cache-aware execution runtime.

Two coordinated pieces behind every heavy loop in the repo:

* :mod:`repro.runtime.parallel` — a worker-pool executor that ships an
  expensive payload (a built :class:`~repro.cost.context.CostContext`,
  experiment settings) to each worker once and maps cheap work items
  (enumeration chunk bounds, trial descriptors) over the pool.  Serial
  execution (``workers=1``) is the default and bit-identical; worker counts
  only change wall-clock time, never results.
* :mod:`repro.runtime.store` — a content-fingerprint-keyed LRU memo of
  ``CostContext`` instances, so trials and repeated solver calls over the
  same (dataset, candidates) pair stop rebuilding supports and sorted CDF
  columns.  Rebuild happens exactly when the dataset or candidate set
  changes.

Consumers: the three brute-force enumerators (sharded subset/assignment
chunks), the Table-1 / ablation / sensitivity trial loops (``workers`` field
on their settings dataclasses, ``--workers`` on the CLI), and
``wang_zhang_1d``'s store-routed final scoring.
"""

from .parallel import available_workers, iter_chunk_bounds, parallel_map, resolve_workers
from .store import (
    DEFAULT_STORE_SIZE,
    ContextStore,
    candidate_fingerprint,
    dataset_fingerprint,
)

__all__ = [
    "available_workers",
    "iter_chunk_bounds",
    "parallel_map",
    "resolve_workers",
    "ContextStore",
    "DEFAULT_STORE_SIZE",
    "candidate_fingerprint",
    "dataset_fingerprint",
]
