"""Process-parallel, cache-aware, zero-copy, bound-sharing execution runtime.

Architecture
------------
The runtime is four coordinated tiers behind every heavy loop in the repo —
a **pool** tier that owns processes, a **shared-memory** tier that owns
payload bytes, a **store** tier that owns built-context reuse, and an
**incumbent** tier that owns the cross-shard branch-and-bound state:

* :mod:`repro.runtime.pool` — the persistent worker pool.  One process-wide
  :class:`~repro.runtime.pool.PersistentPool` is spawned lazily on first
  parallel use, grown (never shrunk) when a later call asks for more
  workers, reused across brute-force calls and experiment trials, and shut
  down explicitly via :func:`~repro.runtime.pool.shutdown` (also at
  interpreter exit).  Fork/spawn hazards degrade safely: a stale executor
  inherited through ``fork`` is discarded and respawned, a dead worker
  (:class:`BrokenProcessPool`) triggers a serial fallback with identical
  results, and any parallel request made *inside* a worker runs serially.

* :mod:`repro.runtime.shm` — zero-copy payload publication.  The arrays of
  a :class:`~repro.cost.context.CostContext` payload (supports,
  expected-distance matrix, sorted CDF columns, rank-merge tables) are
  flattened into ``multiprocessing.shared_memory`` segments once, described
  by a small picklable descriptor, and attached by workers as read-only
  NumPy views — so a chunk dispatch ships only the descriptor plus its work
  slice instead of a pickled payload.  Segments are refcounted explicitly
  (publisher-owned leases, tracker-registration suppressed on attach) and
  unlinked deterministically on cache eviction, shutdown, or exit — no
  resource-tracker leaks.  Publications are memoized per context (object
  identity + materialized parts + mutation version), so twenty calls over
  one memoized context publish once.

* :mod:`repro.runtime.parallel` — the front door.
  :func:`~repro.runtime.parallel.parallel_map` picks the cheapest transport
  (shared memory for context payloads, inline pickle for small settings, a
  per-call fork-inheritance pool for large payloads with shared memory
  off), clamps the requested worker count to the CPUs actually available
  and to the amount of work (``workers=N`` is never slower than serial on a
  small box), and reduces results in submission order.  Serial
  (``workers=1``) is the default; worker counts and transports change wall
  clock only, never results.

* :mod:`repro.runtime.store` — cross-call and cross-process context reuse.
  :class:`~repro.runtime.store.ContextStore` memoizes ``CostContext``
  instances in a content-fingerprint-keyed LRU and, when a spill directory
  is configured (``spill_dir`` or ``REPRO_CONTEXT_SPILL``), writes built
  contexts through to disk under the same fingerprints so separate
  processes — repeated CLI invocations — reuse each other's builds.  The
  spill directory is bounded by age and total size (``spill_max_bytes`` /
  ``REPRO_CONTEXT_SPILL_MAX``, ``spill_max_age_seconds`` /
  ``REPRO_CONTEXT_SPILL_MAX_AGE``; stat-only, oldest-first) and
  :meth:`~repro.runtime.store.ContextStore.scan_spill_dir` deep-cleans
  corrupt or version-mismatched files via the same tag check the read path
  uses.  Rebuild happens exactly when the dataset or candidate set changes.

* :mod:`repro.runtime.incumbent` — the shared branch-and-bound incumbent.
  One process-wide slot (a ``multiprocessing.Value`` double plus a
  generation counter sharing its lock) is created before the pool spawns —
  inherited by ``fork`` workers, shipped through the pool initializer under
  ``spawn`` — and each pruned :func:`~repro.runtime.parallel.parallel_map`
  activates a fresh generation seeded with a heuristic feasible cost.  The
  shared-incumbent protocol: a small picklable token rides in every chunk
  dispatch tuple; chunk tasks read the threshold **once per chunk** (under
  the slot lock — torn reads could over-prune) and publish achieved costs
  through a lock-light compare-and-swap (unlocked peek, locked re-check
  and write), so one shard's early find shrinks every other shard's work.
  Exactness never depends on freshness: every stored value is an achieved
  feasible cost, i.e. an upper bound on the enumeration optimum, so a
  stale read only prunes less.  Serial maps thread a plain in-process
  incumbent through the identical chunk loop.

Consumers: the three brute-force enumerators (sharded subset/assignment
chunks over shared-memory descriptors, pruned against the shared incumbent
via the admissible bound kernels on
:class:`~repro.cost.context.CostContext` — see
:mod:`repro.bounds.lower_bounds`), the Table-1 / ablation / sensitivity
trial loops (``workers`` field on their settings dataclasses, ``--workers``
on the CLI, ``--no-prune`` to force exhaustive references), and
``wang_zhang_1d``'s store-routed final scoring.  ``python -m repro bench``
measures every tier and writes the cross-PR perf trajectory.
"""

from .incumbent import IncumbentToken, SerialIncumbent, SharedIncumbent
from .parallel import (
    available_workers,
    effective_workers,
    iter_chunk_bounds,
    parallel_map,
    resolve_workers,
    set_oversubscribe,
)
from .pool import PersistentPool, shutdown as shutdown_runtime
from .store import (
    DEFAULT_STORE_SIZE,
    ContextStore,
    candidate_fingerprint,
    dataset_fingerprint,
)

__all__ = [
    "available_workers",
    "effective_workers",
    "iter_chunk_bounds",
    "parallel_map",
    "resolve_workers",
    "set_oversubscribe",
    "PersistentPool",
    "shutdown_runtime",
    "ContextStore",
    "DEFAULT_STORE_SIZE",
    "candidate_fingerprint",
    "dataset_fingerprint",
    "IncumbentToken",
    "SerialIncumbent",
    "SharedIncumbent",
]
