"""Keyed, bounded memoization of :class:`~repro.cost.context.CostContext`.

Building a context costs one metric pass over every point's support plus a
sort of every per-candidate CDF column — work that experiment trials and
repeated solver calls over the same dataset used to redo for every call.
:class:`ContextStore` memoizes built contexts by **content fingerprints**:

* the *dataset fingerprint* hashes every point's locations and
  probabilities plus the metric's identity (type and pickled state), so two
  structurally equal datasets share an entry while any change to a location,
  a probability or the metric misses;
* the *candidate fingerprint* hashes the candidate array's shape, dtype and
  bytes.

Invalidation rule (same as the context itself): a context is reusable
exactly while the dataset **and** the candidate set are unchanged —
assignments, subsets and local-search rounds over fixed candidates never
invalidate.  Any changed byte in either fingerprint is a miss and builds a
fresh context; the old entry ages out of the LRU.

Disk spill tier
---------------
The in-memory LRU is per process; a second tier spills built contexts to
disk under the **same** content fingerprints, so separate processes —
repeated CLI invocations, benchmark subprocesses — reuse each other's
builds.  Pass ``spill_dir`` (or set the ``REPRO_CONTEXT_SPILL`` environment
variable, which becomes the default for every store) to enable it:

* every in-memory miss that builds a context also writes it through to
  ``<spill_dir>/<dataset-fp>-<candidate-fp>-<pin>.ctx`` (atomic
  write-then-rename; version-tagged pickle carrying a **content checksum**
  over the pickled context bytes);
* a later miss — in this process after eviction, or in a brand-new process —
  verifies the checksum and loads the spilled context instead of rebuilding
  (``disk_hits`` counts these); a truncated, corrupt, stale or
  version-mismatched file is **deleted and treated as a miss** — the
  context is rebuilt and re-spilled, never raised mid-solve (a torn write
  from a killed process must not poison every later run);
* invalidation is free: any changed dataset/candidate byte changes the
  fingerprint and therefore the filename.

The directory is **bounded**: after every write-through the store prunes it
by age (files older than ``spill_max_age_seconds`` /
``REPRO_CONTEXT_SPILL_MAX_AGE``) and by size (oldest-first eviction until
the directory fits ``spill_max_bytes`` / ``REPRO_CONTEXT_SPILL_MAX``) —
stat-only, so a solve never pays an unpickle for housekeeping.  Limits are
off by default (``None``); evictions are counted in ``spill_evictions``.
:meth:`ContextStore.scan_spill_dir` is the deeper, explicit sweep: it loads
every ``.ctx`` file through the same version-tag check the read path uses
and deletes the corrupt or mismatched ones, so a directory shared by many
processes can be reconditioned without guessing which files still parse.

Pool workers still never share a store (the parallel runtime ships built
contexts via shared-memory descriptors instead, which is cheaper than
re-keying).  Reusing a cached context — memory or disk — is bit-identical to
rebuilding it: the arrays were produced by the same kernels from the same
inputs, and pickling restores their exact bytes.  Memoization never changes
results, only wall-clock time.
"""

from __future__ import annotations

import hashlib
import os
import pickle
from collections import OrderedDict
from pathlib import Path

import numpy as np

from .. import faults
from .._env import env_number, env_str
from ..cost.context import CostContext
from ..sanitize import det_san
from ..uncertain.dataset import UncertainDataset

#: Default number of contexts a store keeps before evicting least-recently-used.
DEFAULT_STORE_SIZE = 8

#: Environment variable naming a default spill directory for every store.
SPILL_ENV = "REPRO_CONTEXT_SPILL"

#: Environment variable bounding the spill directory's total size in bytes.
SPILL_MAX_ENV = "REPRO_CONTEXT_SPILL_MAX"

#: Environment variable bounding spill-file age in seconds.
SPILL_MAX_AGE_ENV = "REPRO_CONTEXT_SPILL_MAX_AGE"

#: Bumped whenever the pickled context layout changes; mismatched spill
#: files are deleted and rebuilt.  Version 2 added the content checksum
#: over the pickled context bytes.
SPILL_FORMAT = 2


def _hash_array(hasher: "hashlib._Hash", array: np.ndarray) -> None:
    array = np.ascontiguousarray(array)
    hasher.update(str(array.shape).encode())
    hasher.update(str(array.dtype).encode())
    hasher.update(array.tobytes())


def dataset_fingerprint(dataset: UncertainDataset) -> str:
    """Content hash of every point's support and the ambient metric."""
    hasher = hashlib.sha1()
    hasher.update(type(dataset.metric).__qualname__.encode())
    hasher.update(pickle.dumps(dataset.metric))
    for point in dataset.points:
        _hash_array(hasher, point.locations)
        _hash_array(hasher, point.probabilities)
    return hasher.hexdigest()


def candidate_fingerprint(candidates: np.ndarray) -> str:
    """Content hash of a candidate-center array."""
    hasher = hashlib.sha1()
    _hash_array(hasher, np.asarray(candidates, dtype=float))
    return hasher.hexdigest()


class ContextStore:
    """LRU-bounded memo of :class:`CostContext` keyed by content fingerprints.

    >>> store = ContextStore()
    >>> context = store.get(dataset, candidates)   # builds
    >>> same = store.get(dataset, candidates)      # cache hit, same object
    >>> assert same is context

    ``hits`` / ``misses`` / ``disk_hits`` / ``spill_evictions`` counters make
    reuse observable in tests and benchmarks.  ``spill_dir`` enables the
    cross-process disk tier (defaults to the ``REPRO_CONTEXT_SPILL``
    environment variable; ``None`` with the variable unset keeps the store
    memory-only).  ``spill_max_bytes`` / ``spill_max_age_seconds`` bound the
    directory (env defaults ``REPRO_CONTEXT_SPILL_MAX`` /
    ``REPRO_CONTEXT_SPILL_MAX_AGE``; ``None`` = unbounded), enforced
    oldest-first after every write-through.
    """

    def __init__(
        self,
        maxsize: int = DEFAULT_STORE_SIZE,
        *,
        spill_dir: str | Path | None = None,
        spill_max_bytes: int | None = None,
        spill_max_age_seconds: float | None = None,
    ):
        self.maxsize = max(1, int(maxsize))
        if spill_dir is None:
            spill_dir = env_str(SPILL_ENV)
        self.spill_dir = Path(spill_dir) if spill_dir is not None else None
        if spill_max_bytes is None:
            spill_max_bytes = env_number(SPILL_MAX_ENV, int)
        if spill_max_age_seconds is None:
            spill_max_age_seconds = env_number(SPILL_MAX_AGE_ENV, float)
        self.spill_max_bytes = int(spill_max_bytes) if spill_max_bytes else None
        self.spill_max_age_seconds = (
            float(spill_max_age_seconds) if spill_max_age_seconds else None
        )
        self._entries: OrderedDict[tuple[str, str, bool], CostContext] = OrderedDict()
        self._dataset_keys: dict[int, tuple[UncertainDataset, str]] = {}
        self.hits = 0
        self.misses = 0
        self.disk_hits = 0
        self.spill_evictions = 0

    def __len__(self) -> int:
        return len(self._entries)

    def _dataset_key(self, dataset: UncertainDataset) -> str:
        # Datasets are frozen; one fingerprint per object identity is safe
        # and keeps repeated lookups from rehashing every support.  The
        # memo holds the dataset itself (not just its id) so a recycled
        # object id can never alias a dead dataset's fingerprint.
        memoized = self._dataset_keys.get(id(dataset))
        if memoized is not None and memoized[0] is dataset:
            return memoized[1]
        key = dataset_fingerprint(dataset)
        if len(self._dataset_keys) >= 4 * self.maxsize:
            self._dataset_keys.clear()
        self._dataset_keys[id(dataset)] = (dataset, key)
        return key

    def _spill_path(self, key: tuple[str, str, bool]) -> Path | None:
        if self.spill_dir is None:
            return None
        dataset_key, candidate_key, pin = key
        return self.spill_dir / f"{dataset_key}-{candidate_key}-{int(pin)}.ctx"

    def _load_spilled(
        self, path: Path | None, *, discard_corrupt: bool = True
    ) -> CostContext | None:
        """Checksum-verified disk load; anything suspicious is a miss.

        A file that fails *any* check — unreadable, truncated pickle, wrong
        tag, stale :data:`SPILL_FORMAT`, content checksum mismatch, wrong
        payload type — is deleted on the spot (unless ``discard_corrupt``
        is off, for :meth:`scan_spill_dir`'s own accounting) and ``None``
        is returned so the caller rebuilds: corruption costs one rebuild,
        never an exception mid-solve and never a poisoned future run.
        """
        if path is None or not path.is_file():
            return None
        try:
            with path.open("rb") as handle:
                tag, version, checksum, blob = pickle.load(handle)
            if tag != "repro-context" or version != SPILL_FORMAT:
                raise ValueError("stale or foreign spill header")
            if not isinstance(blob, bytes) or hashlib.sha1(blob).hexdigest() != checksum:
                raise ValueError("spill content checksum mismatch")
            context = pickle.loads(blob)
            if not isinstance(context, CostContext):
                raise ValueError("spill payload is not a CostContext")
        except Exception:
            if discard_corrupt:
                try:
                    path.unlink(missing_ok=True)
                except OSError:  # pragma: no cover - raced with another process
                    pass
            return None
        return context

    def _write_spill(self, path: Path | None, context: CostContext) -> None:
        """Best-effort atomic write-through (a failed write never fails a solve)."""
        if path is None:
            return
        temporary = path.with_suffix(f".tmp{os.getpid()}")
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            blob = pickle.dumps(context, protocol=pickle.HIGHEST_PROTOCOL)
            checksum = hashlib.sha1(blob).hexdigest()
            if faults.inject("spill_corrupt", "store.write_spill", token=path.name):
                # Chaos harness: persist a truncated payload whose checksum
                # no longer matches — the read path must treat it as a miss.
                blob = blob[: len(blob) // 2]
            with temporary.open("wb") as handle:
                pickle.dump(
                    ("repro-context", SPILL_FORMAT, checksum, blob),
                    handle,
                    protocol=pickle.HIGHEST_PROTOCOL,
                )
            temporary.replace(path)
        except Exception:
            # Full disk, read-only directory, unpicklable metric, ... — the
            # spill tier is an optimization, never a failure mode.  Don't
            # leave a half-written temp file behind either.
            try:
                temporary.unlink(missing_ok=True)
            except OSError:
                pass
            return
        self._prune_spill_dir(keep=path)

    def _spill_files(self) -> list[tuple[float, int, Path]]:
        """``(mtime, bytes, path)`` for every spill file, oldest first."""
        if self.spill_dir is None or not self.spill_dir.is_dir():
            return []
        entries = []
        for path in self.spill_dir.glob("*.ctx"):
            try:
                stat = path.stat()
            except OSError:  # pragma: no cover - raced with another process
                continue
            entries.append((stat.st_mtime, stat.st_size, path))
        entries.sort()  # repro: noqa[FLOAT-SORT-HOTPATH] -- eviction housekeeping over (mtime, size, path) stat tuples, not a cost sweep
        return entries

    def _evict_spill_file(self, path: Path) -> bool:
        try:
            path.unlink(missing_ok=True)
        except OSError:  # pragma: no cover - raced with another process
            return False
        self.spill_evictions += 1
        return True

    def _prune_spill_dir(self, *, keep: Path | None = None) -> None:
        """Enforce the age and size bounds, oldest files first.

        Stat-only (no unpickling), so the write path stays cheap; the file
        just written (``keep``) is never evicted — a size bound smaller than
        one context must not make the tier thrash itself empty.  Eviction
        can never lose data, only a future ``disk_hit``: any evicted context
        is rebuilt (and re-spilled) on its next miss.
        """
        if self.spill_max_bytes is None and self.spill_max_age_seconds is None:
            return
        entries = self._spill_files()
        if self.spill_max_age_seconds is not None:
            import time

            cutoff = time.time() - self.spill_max_age_seconds
            fresh = []
            for mtime, size, path in entries:
                if mtime < cutoff and path != keep:
                    self._evict_spill_file(path)
                else:
                    fresh.append((mtime, size, path))
            entries = fresh
        if self.spill_max_bytes is not None:
            total = sum(size for _, size, _ in entries)
            for _, size, path in entries:
                if total <= self.spill_max_bytes:
                    break
                if path == keep:
                    continue
                if self._evict_spill_file(path):
                    total -= size

    def scan_spill_dir(self) -> dict[str, int]:
        """Deep-scan the spill directory, deleting files that cannot load.

        Every ``.ctx`` file is pushed through the same checksum-verified
        load the read path applies (:meth:`_load_spilled`): truncated
        pickles, wrong tags, stale ``SPILL_FORMAT`` versions and content
        checksum mismatches are removed so cross-process consumers stop
        re-stat'ing garbage.  (The read path now deletes corrupt files
        itself on first touch; the scan remains the way to recondition a
        shared directory *eagerly*, without waiting for misses.)  Returns
        ``{"kept": ..., "removed": ...}``.
        """
        kept = 0
        removed = 0
        for _, _, path in self._spill_files():
            if self._load_spilled(path, discard_corrupt=False) is None:
                self._evict_spill_file(path)
                removed += 1
            else:
                kept += 1
        return {"kept": kept, "removed": removed}

    def get(
        self,
        dataset: UncertainDataset,
        candidates: np.ndarray,
        *,
        pin_supports: bool = True,
    ) -> CostContext:
        """The memoized context for ``(dataset, candidates)``.

        Lookup order: in-memory LRU, then the disk spill tier (when
        enabled), then a fresh build (written through to disk).
        """
        candidates = np.asarray(candidates, dtype=float)
        key = (self._dataset_key(dataset), candidate_fingerprint(candidates), pin_supports)
        entry = self._entries.get(key)
        if entry is not None:
            self.hits += 1
            self._entries.move_to_end(key)
            return entry
        spill_path = self._spill_path(key)
        entry = self._load_spilled(spill_path)
        if entry is not None:
            self.disk_hits += 1
            # The disk tier trusts filenames; DET-SAN (when enabled)
            # re-derives both fingerprints from the loaded context and
            # reports a corrupted or cross-wired spill file instead of
            # silently serving a wrong-but-plausible cost surface.
            det_san.verify_context_fingerprints(
                entry, key[0], key[1], origin=str(spill_path)
            )
        else:
            self.misses += 1
            entry = CostContext(dataset, candidates, pin_supports=pin_supports)
            self._write_spill(spill_path, entry)
        self._entries[key] = entry
        while len(self._entries) > self.maxsize:
            self._entries.popitem(last=False)
        return entry

    def clear(self) -> None:
        """Drop the in-memory tier and counters (spilled files stay valid)."""
        self._entries.clear()
        self._dataset_keys.clear()
        self.hits = 0
        self.misses = 0
        self.disk_hits = 0
        self.spill_evictions = 0
