"""Keyed, bounded memoization of :class:`~repro.cost.context.CostContext`.

Building a context costs one metric pass over every point's support plus a
sort of every per-candidate CDF column — work that experiment trials and
repeated solver calls over the same dataset used to redo for every call.
:class:`ContextStore` memoizes built contexts by **content fingerprints**:

* the *dataset fingerprint* hashes every point's locations and
  probabilities plus the metric's identity (type and pickled state), so two
  structurally equal datasets share an entry while any change to a location,
  a probability or the metric misses;
* the *candidate fingerprint* hashes the candidate array's shape, dtype and
  bytes.

Invalidation rule (same as the context itself): a context is reusable
exactly while the dataset **and** the candidate set are unchanged —
assignments, subsets and local-search rounds over fixed candidates never
invalidate.  Any changed byte in either fingerprint is a miss and builds a
fresh context; the old entry ages out of the LRU.

The store is deliberately *not* shared across processes: pool workers each
hold their own (the parallel runtime ships built contexts in the worker
payload instead, which is cheaper than re-keying).  Reusing a cached context
is bit-identical to rebuilding it — the cached arrays were produced by the
same kernels from the same inputs — so memoization never changes results,
only wall-clock time.
"""

from __future__ import annotations

import hashlib
import pickle
from collections import OrderedDict

import numpy as np

from ..cost.context import CostContext
from ..uncertain.dataset import UncertainDataset

#: Default number of contexts a store keeps before evicting least-recently-used.
DEFAULT_STORE_SIZE = 8


def _hash_array(hasher: "hashlib._Hash", array: np.ndarray) -> None:
    array = np.ascontiguousarray(array)
    hasher.update(str(array.shape).encode())
    hasher.update(str(array.dtype).encode())
    hasher.update(array.tobytes())


def dataset_fingerprint(dataset: UncertainDataset) -> str:
    """Content hash of every point's support and the ambient metric."""
    hasher = hashlib.sha1()
    hasher.update(type(dataset.metric).__qualname__.encode())
    hasher.update(pickle.dumps(dataset.metric))
    for point in dataset.points:
        _hash_array(hasher, point.locations)
        _hash_array(hasher, point.probabilities)
    return hasher.hexdigest()


def candidate_fingerprint(candidates: np.ndarray) -> str:
    """Content hash of a candidate-center array."""
    hasher = hashlib.sha1()
    _hash_array(hasher, np.asarray(candidates, dtype=float))
    return hasher.hexdigest()


class ContextStore:
    """LRU-bounded memo of :class:`CostContext` keyed by content fingerprints.

    >>> store = ContextStore()
    >>> context = store.get(dataset, candidates)   # builds
    >>> same = store.get(dataset, candidates)      # cache hit, same object
    >>> assert same is context

    ``hits`` / ``misses`` counters make reuse observable in tests and
    benchmarks.
    """

    def __init__(self, maxsize: int = DEFAULT_STORE_SIZE):
        self.maxsize = max(1, int(maxsize))
        self._entries: OrderedDict[tuple[str, str, bool], CostContext] = OrderedDict()
        self._dataset_keys: dict[int, tuple[UncertainDataset, str]] = {}
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._entries)

    def _dataset_key(self, dataset: UncertainDataset) -> str:
        # Datasets are frozen; one fingerprint per object identity is safe
        # and keeps repeated lookups from rehashing every support.  The
        # memo holds the dataset itself (not just its id) so a recycled
        # object id can never alias a dead dataset's fingerprint.
        memoized = self._dataset_keys.get(id(dataset))
        if memoized is not None and memoized[0] is dataset:
            return memoized[1]
        key = dataset_fingerprint(dataset)
        if len(self._dataset_keys) >= 4 * self.maxsize:
            self._dataset_keys.clear()
        self._dataset_keys[id(dataset)] = (dataset, key)
        return key

    def get(
        self,
        dataset: UncertainDataset,
        candidates: np.ndarray,
        *,
        pin_supports: bool = True,
    ) -> CostContext:
        """The memoized context for ``(dataset, candidates)``; builds on miss."""
        candidates = np.asarray(candidates, dtype=float)
        key = (self._dataset_key(dataset), candidate_fingerprint(candidates), pin_supports)
        entry = self._entries.get(key)
        if entry is not None:
            self.hits += 1
            self._entries.move_to_end(key)
            return entry
        self.misses += 1
        entry = CostContext(dataset, candidates, pin_supports=pin_supports)
        self._entries[key] = entry
        while len(self._entries) > self.maxsize:
            self._entries.popitem(last=False)
        return entry

    def clear(self) -> None:
        self._entries.clear()
        self._dataset_keys.clear()
        self.hits = 0
        self.misses = 0
