"""Zero-copy publication of :class:`~repro.cost.context.CostContext` payloads.

A sharded brute-force call ships the same expensive payload — pinned
supports, the expected-distance matrix, per-candidate sorted CDF columns,
rank-merge tables — to every worker.  PR 3 did that by pickling the payload
into each (per-call) pool via the initializer.  A *persistent* pool cannot
inherit later payloads by ``fork``, and re-pickling megabytes per call is
exactly the overhead the persistent pool exists to kill.  This module
instead flattens every numeric array of the payload into
:mod:`multiprocessing.shared_memory` segments once and describes them with a
small picklable :class:`PayloadDescriptor`; the chunk protocol then ships
only the descriptor, a work slice and (for pruned enumerations) the
incumbent token of :mod:`repro.runtime.incumbent`, and workers attach the
segments zero-copy (NumPy views straight into the mapped buffer, marked
read-only).  Pruned maps need the expected matrix (and, for the unassigned
objective, the pinned supports) materialized before publication so the
workers' bound kernels run on the shared bytes — the brute-force callers'
seeding step guarantees that ordering.

Layout
------
One *payload segment* holds every published array back to back (8-byte
aligned).  The descriptor records, per array, a key, dtype string, shape and
byte offset; ragged per-point structures (supports, probabilities, the
evaluator's sorted columns) are concatenated along the point axis and
re-sliced into per-point views on attach, so reconstruction allocates
nothing.  Non-array payload leaves (chunk sizes, assignment policies, the
metric, point labels) are pickled into the descriptor's ``meta`` blob —
small by construction.

Reconstructed contexts are **bit-identical** consumers: every view aliases
the exact bytes the parent produced, and all downstream kernels are pure
functions of those bytes, so results with shared memory on equal results
with it off, at every worker count.

Lifecycle
---------
Segments are refcounted explicitly, not via the resource tracker:

* the *publisher* (parent) owns each segment through a :class:`SegmentLease`
  and unlinks it deterministically — on publication-cache eviction, on
  :func:`close_all_publications`, or at interpreter exit;
* *workers* attach without registering with the resource tracker (Python
  3.11 registers on attach, which would let a worker's tracker unlink a
  segment the parent still owns — the classic bpo-38119 double-unlink) and
  cache a bounded number of attachments, closing evicted ones.

``publish_payload`` memoizes per-context publications keyed on object
identity, the set of materialized parts and a mutation version, so twenty
brute-force calls over one memoized context publish its arrays exactly
once.  Arrays that are *not* part of the context (e.g. a policy's score
matrix) go into a secondary per-call segment whose lease the caller closes
as soon as the map completes.
"""

from __future__ import annotations

import atexit
import os
import pickle
import secrets
import weakref
from collections import OrderedDict
from contextlib import contextmanager
from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import Any, Callable, Sequence

import numpy as np

from .. import faults
from ..cost.context import CostContext, _RankMergeTables
from ..cost.expected import AssignedCostEvaluator
from ..sanitize import shm_san
from ..uncertain.dataset import UncertainDataset
from ..uncertain.point import UncertainPoint

#: Shared-memory segment name prefix (leak scans in tests key on this).
SEGMENT_PREFIX = "reproseg"
#: Publications the parent keeps alive before unlinking least-recently-used.
#: (The worker-side attachment bound is :data:`repro.runtime.pool.WORKER_PAYLOAD_CACHE`.)
PUBLICATION_CACHE_SIZE = 4


def shm_available() -> bool:
    """Whether ``multiprocessing.shared_memory`` works on this platform."""
    return hasattr(shared_memory, "SharedMemory")


# ---------------------------------------------------------------------------
# Raw segment plumbing
# ---------------------------------------------------------------------------


@contextmanager
def _untracked():
    """Suppress resource-tracker registration while attaching.

    Python 3.11 registers shared-memory *attachments* with the resource
    tracker; when a worker exits, its tracker would then unlink segments the
    parent still owns.  Attaching untracked leaves exactly one owner — the
    creator — responsible for the unlink.
    """
    try:
        from multiprocessing import resource_tracker
    except ImportError:  # pragma: no cover - non-POSIX platforms
        yield
        return
    original = resource_tracker.register
    resource_tracker.register = lambda *args, **kwargs: None
    try:
        yield
    finally:
        resource_tracker.register = original


def _attach_segment(name: str) -> shared_memory.SharedMemory:
    """Attach to an existing segment without tracker registration."""
    # Chaos-harness injection point: a worker whose attach "fails" here is
    # what drives the per-call pickled-transport fallback in the pool.
    faults.inject("shm_attach", "shm.attach_segment", token=name)
    shm_san.record_attach(name)
    try:
        return shared_memory.SharedMemory(name=name, track=False)  # Python 3.13+
    except TypeError:
        with _untracked():
            return shared_memory.SharedMemory(name=name)


class SegmentLease:
    """Creator-side ownership of one shared-memory segment.

    ``close()`` is idempotent and both closes the mapping and unlinks the
    name, so the segment disappears from the system namespace immediately;
    workers still attached keep their mapping alive until they close it.

    Leases are only ever constructed creator-side (workers use
    :func:`_attach_segment`), so construction and :meth:`close` are exactly
    the create/unlink events SHM-SAN audits.
    """

    def __init__(self, segment: shared_memory.SharedMemory, origin: str = "SegmentLease"):
        self.segment = segment
        self.name = segment.name
        self._open = True
        shm_san.record_create(self.name, origin)

    @property
    def open(self) -> bool:
        return self._open

    def close(self) -> None:
        if not self._open:
            return
        self._open = False
        shm_san.record_unlink(self.name)
        try:
            self.segment.close()
        finally:
            try:
                self.segment.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass


def _aligned(offset: int, alignment: int = 8) -> int:
    return (offset + alignment - 1) // alignment * alignment


@dataclass(frozen=True)
class _ArraySpec:
    """Location of one published array inside its segment."""

    key: str
    dtype: str
    shape: tuple[int, ...]
    offset: int


@dataclass(frozen=True)
class SegmentDescriptor:
    """Picklable description of one segment's packed arrays."""

    name: str
    nbytes: int
    arrays: tuple[_ArraySpec, ...]


def pack_arrays(arrays: dict[str, np.ndarray]) -> tuple[SegmentDescriptor, SegmentLease]:
    """Copy ``arrays`` into one fresh segment; return its descriptor + lease."""
    specs: list[_ArraySpec] = []
    offset = 0
    for key, array in arrays.items():
        array = np.ascontiguousarray(array)
        offset = _aligned(offset)
        specs.append(_ArraySpec(key=key, dtype=str(array.dtype), shape=array.shape, offset=offset))
        offset += array.nbytes
    nbytes = max(1, offset)
    name = f"{SEGMENT_PREFIX}_{os.getpid()}_{secrets.token_hex(4)}"
    segment = shared_memory.SharedMemory(name=name, create=True, size=nbytes)
    # The lease must exist before anything else can raise: an exception
    # between create and lease would orphan the segment in /dev/shm with
    # nothing owning its unlink (SHM-LIFECYCLE).
    lease = SegmentLease(segment, origin="pack_arrays")
    try:
        for spec, (key, array) in zip(specs, arrays.items()):
            array = np.ascontiguousarray(array)
            view = np.ndarray(spec.shape, dtype=spec.dtype, buffer=segment.buf, offset=spec.offset)
            view[...] = array
    except BaseException:
        lease.close()
        raise
    return SegmentDescriptor(name=segment.name, nbytes=nbytes, arrays=tuple(specs)), lease


def unpack_arrays(
    descriptor: SegmentDescriptor, segment: shared_memory.SharedMemory
) -> dict[str, np.ndarray]:
    """Read-only zero-copy views of every array packed in ``segment``."""
    views: dict[str, np.ndarray] = {}
    for spec in descriptor.arrays:
        view = np.ndarray(spec.shape, dtype=spec.dtype, buffer=segment.buf, offset=spec.offset)
        view.flags.writeable = False
        views[spec.key] = view
    return views


# ---------------------------------------------------------------------------
# CostContext <-> arrays
# ---------------------------------------------------------------------------

#: Structure-pickle placeholders.
_CONTEXT_MARKER = "__repro_context__"


@dataclass(frozen=True)
class _ArrayRef:
    """Placeholder for a published array inside the pickled structure."""

    key: str


@dataclass(frozen=True)
class _ContextMeta:
    """Small non-array state needed to rebuild a context from views."""

    support_sizes: tuple[int, ...]
    dimension: int
    metric_blob: bytes
    labels: tuple[str | None, ...]
    pin_supports: bool
    has_supports: bool
    has_expected: bool
    has_evaluator: bool
    rank_merge_groups: tuple[tuple[int, tuple[int, ...]], ...]  # (z, point indices)
    #: The compact layout of ``REPRO_CONTEXT_DTYPE=float32``: the heavy
    #: tables were cast to float32 (rank keys to int32) before packing, and
    #: the rebuilt context carries ``float32=True`` so chunk tasks widen
    #: their prune margins and return survivor sets for exact re-scoring.
    float32: bool = False


@dataclass(frozen=True)
class PayloadDescriptor:
    """Everything a worker needs to rebuild a payload zero-copy."""

    segments: tuple[SegmentDescriptor, ...]
    structure: bytes  # pickled payload skeleton with _ArrayRef/_CONTEXT_MARKER leaves
    context_meta: _ContextMeta | None
    token: str  # worker-side cache key

    def dispatch_bytes(self) -> int:
        """Bytes this descriptor adds to every chunk dispatch."""
        return len(pickle.dumps(self, protocol=pickle.HIGHEST_PROTOCOL))


def _context_parts(context: CostContext) -> tuple[bool, bool, bool, bool]:
    return (
        context._supports is not None,
        context._expected is not None,
        context._evaluator is not None,
        context._rank_merge is not None,
    )


def _compact(array: np.ndarray) -> np.ndarray:
    """The float32-layout cast: float64 -> float32, int64 rank keys -> int32.

    Anything else (bool masks, already-narrow dtypes) passes through.  Only
    ever applied to *published copies* — the parent's exact tables are
    untouched, which is what lets survivors be re-scored in float64.
    """
    if array.dtype == np.float64:
        return array.astype(np.float32)
    if array.dtype == np.int64:
        return array.astype(np.int32)
    return array


def context_arrays(
    context: CostContext, *, float32: bool = False
) -> tuple[dict[str, np.ndarray], _ContextMeta]:
    """Flatten every materialized array of ``context`` for publication.

    Ragged per-point lists are concatenated along the point axis;
    :func:`_context_from_views` re-slices them.  Only materialized caches are
    published — callers pre-build exactly what their chunk task touches.

    ``float32=True`` applies the compact layout of
    ``REPRO_CONTEXT_DTYPE=float32``: the heavy tables (pinned supports, the
    evaluator's CDF columns, rank-merge values/weights) are published as
    float32 and rank keys as int32, roughly halving the segment.  The cast is admissible-by-margin, not exact: rebuilt contexts
    carry ``float32=True`` and chunk tasks must widen prune margins by
    :data:`repro.bounds.lower_bounds.FLOAT32_SLACK` and hand margin-zone
    survivors back for exact float64 re-scoring (see
    :mod:`repro.baselines.brute_force`), keeping final results bit-identical.
    Candidate/location coordinates and probability weights stay float64 —
    they are small, and exact weights keep worker-side bound sums within the
    single-cast drift the slack is budgeted for.
    """
    cast = _compact if float32 else (lambda array: array)
    dataset = context.dataset
    arrays: dict[str, np.ndarray] = {
        "candidates": context.candidates,
        "locations": dataset.all_locations(),
        "probabilities": np.concatenate(context.probabilities),
    }
    has_supports, has_expected, has_evaluator, has_rank_merge = _context_parts(context)
    if has_supports:
        arrays["supports"] = cast(np.concatenate(context._supports, axis=0))
    if has_expected:
        # The expected matrix stays float64 even in the compact layout: it
        # selects assignments by argmin, and a float32 cast could flip a
        # near-tie — changing *labels*, a discrete error no scalar margin
        # can absorb.  Bound gathers get a float32 shadow instead; it is the
        # one table published twice, and it is small next to the per-support
        # tables the cast halves.
        arrays["expected"] = context._expected
        if float32:
            arrays["expected32"] = context._expected.astype(np.float32)
    if has_evaluator:
        evaluator = context._evaluator
        arrays["ev_values"] = cast(np.concatenate(evaluator._values, axis=0))
        arrays["ev_cdfs"] = cast(np.concatenate(evaluator._cdfs, axis=0))
        arrays["ev_log_deltas"] = cast(np.concatenate(evaluator._log_deltas, axis=0))
        arrays["ev_zero_deltas"] = cast(np.concatenate(evaluator._zero_deltas, axis=0))
    groups: tuple[tuple[int, tuple[int, ...]], ...] = ()
    if has_rank_merge:
        tables = context._rank_merge
        arrays["rm_values"] = cast(tables.values_by_rank)
        group_meta = []
        for index, (points, ranks, weights) in enumerate(tables.groups):
            arrays[f"rm_ranks_{index}"] = cast(ranks)
            arrays[f"rm_weights_{index}"] = cast(weights)
            group_meta.append((int(ranks.shape[1]), tuple(int(p) for p in points)))
        groups = tuple(group_meta)
    meta = _ContextMeta(
        support_sizes=tuple(point.support_size for point in dataset.points),
        dimension=dataset.dimension,
        metric_blob=pickle.dumps(dataset.metric, protocol=pickle.HIGHEST_PROTOCOL),
        labels=tuple(point.label for point in dataset.points),
        pin_supports=context._pin_supports,
        has_supports=has_supports,
        has_expected=has_expected,
        has_evaluator=has_evaluator,
        rank_merge_groups=groups,
        float32=float32,
    )
    return arrays, meta


def _point_slices(stacked: np.ndarray, sizes: Sequence[int]) -> list[np.ndarray]:
    views = []
    offset = 0
    for size in sizes:
        views.append(stacked[offset : offset + size])
        offset += size
    return views


def _frozen_point(
    locations: np.ndarray, probabilities: np.ndarray, label: str | None
) -> UncertainPoint:
    """Rebuild an :class:`UncertainPoint` around validated read-only views.

    The arrays come from a context whose dataset already passed validation;
    re-running ``__post_init__`` would copy them, losing the zero-copy
    property (and the validators may renormalize, losing bit-identity).
    """
    point = UncertainPoint.__new__(UncertainPoint)
    object.__setattr__(point, "locations", locations)
    object.__setattr__(point, "probabilities", probabilities)
    object.__setattr__(point, "label", label)
    object.__setattr__(point, "metadata", {})
    return point


def _context_from_views(views: dict[str, np.ndarray], meta: _ContextMeta) -> CostContext:
    """Rebuild a fully functional :class:`CostContext` over zero-copy views."""
    sizes = meta.support_sizes
    location_views = _point_slices(views["locations"], sizes)
    probability_views = _point_slices(views["probabilities"], sizes)
    points = tuple(
        _frozen_point(locations, probabilities, label)
        for locations, probabilities, label in zip(location_views, probability_views, meta.labels)
    )
    dataset = UncertainDataset.__new__(UncertainDataset)
    object.__setattr__(dataset, "points", points)
    object.__setattr__(dataset, "metric", pickle.loads(meta.metric_blob))

    context = CostContext.__new__(CostContext)
    context.dataset = dataset
    context.candidates = views["candidates"]
    context.probabilities = probability_views
    context._pin_supports = meta.pin_supports
    context._version = 0
    context._supports = (
        _point_slices(views["supports"], sizes) if meta.has_supports else None
    )
    context._expected = views["expected"] if meta.has_expected else None
    # Compact-layout flag: chunk tasks branch on it to widen prune margins
    # and switch to the survivor protocol; bound kernels gather from the
    # float32 shadow while argmin assignment selection stays on the exact
    # float64 expected matrix.
    context.float32 = meta.float32
    context._expected32 = views.get("expected32")
    context._rank_tables = None
    if meta.has_evaluator:
        evaluator = AssignedCostEvaluator.__new__(AssignedCostEvaluator)
        evaluator.n = len(sizes)
        evaluator.columns = context.candidates.shape[0]
        evaluator._values = _point_slices(views["ev_values"], sizes)
        evaluator._cdfs = _point_slices(views["ev_cdfs"], sizes)
        evaluator._log_deltas = _point_slices(views["ev_log_deltas"], sizes)
        evaluator._zero_deltas = _point_slices(views["ev_zero_deltas"], sizes)
        evaluator._probabilities = probability_views
        context._evaluator = evaluator
    else:
        context._evaluator = None
    if meta.rank_merge_groups:
        groups = []
        for index, (_, point_indices) in enumerate(meta.rank_merge_groups):
            groups.append(
                (
                    np.asarray(point_indices, dtype=int),
                    views[f"rm_ranks_{index}"],
                    views[f"rm_weights_{index}"],
                )
            )
        context._rank_merge = _RankMergeTables(
            values_by_rank=views["rm_values"], groups=groups
        )
    else:
        context._rank_merge = None
    return context


# ---------------------------------------------------------------------------
# Payload publication (structure walk + per-context memoization)
# ---------------------------------------------------------------------------


def find_context(payload: Any) -> CostContext | None:
    """The unique :class:`CostContext` inside a (possibly nested) payload."""
    if isinstance(payload, CostContext):
        return payload
    if isinstance(payload, (tuple, list)):
        for element in payload:
            found = find_context(element)
            if found is not None:
                return found
    return None


def _replace_leaves(payload: Any, context: CostContext, extras: dict[str, np.ndarray]):
    """Swap the context / large arrays for markers, collecting extra arrays."""
    if payload is context:
        return _CONTEXT_MARKER
    if isinstance(payload, np.ndarray):
        if context is not None and payload is context._expected:
            return _ArrayRef("expected")
        key = f"extra_{len(extras)}"
        extras[key] = payload
        return _ArrayRef(key)
    if isinstance(payload, (tuple, list)):
        rebuilt = [_replace_leaves(element, context, extras) for element in payload]
        return tuple(rebuilt) if isinstance(payload, tuple) else rebuilt
    return payload


class _PublicationCache:
    """Parent-side memo of per-context segment publications.

    Keyed on the context's object identity, its set of materialized parts
    and its mutation version, so a context reused across calls (e.g. via a
    :class:`~repro.runtime.store.ContextStore`) is packed exactly once, and
    a mutated or further-materialized context is republished.  Evicted or
    closed publications unlink their segment deterministically.
    """

    def __init__(self, maxsize: int = PUBLICATION_CACHE_SIZE):
        self.maxsize = maxsize
        self._entries: OrderedDict[tuple, tuple] = OrderedDict()

    def publish(
        self, context: CostContext, *, float32: bool = False
    ) -> tuple[SegmentDescriptor, _ContextMeta]:
        # float32 is part of the key: the exact and compact layouts of one
        # context are distinct publications (a float64 map must never attach
        # a float32 segment, and vice versa).
        key = (id(context), _context_parts(context), context._version, float32)
        entry = self._entries.pop(key, None)
        if entry is not None:
            if entry[0]() is context:
                self._entries[key] = entry  # back to most-recently-used
                return entry[1], entry[2]
            entry[3].close()  # a dead context's recycled id aliased the key
        arrays, meta = context_arrays(context, float32=float32)
        descriptor, lease = pack_arrays(arrays)

        def _collected(_reference, *, entries=self._entries, key=key, lease=lease):
            # The published context was garbage collected: unlink eagerly
            # instead of waiting for LRU eviction or shutdown.
            entries.pop(key, None)
            lease.close()

        self._entries[key] = (weakref.ref(context, _collected), descriptor, meta, lease)
        while len(self._entries) > self.maxsize:
            _, _, _, old_lease = self._entries.popitem(last=False)[1]
            old_lease.close()
        return descriptor, meta

    def close_all(self) -> None:
        for _, _, _, lease in self._entries.values():
            lease.close()
        self._entries.clear()


_PUBLICATIONS = _PublicationCache()


def close_all_publications() -> None:
    """Unlink every cached context publication (idempotent)."""
    _PUBLICATIONS.close_all()


atexit.register(close_all_publications)


def publish_payload(
    payload: Any, *, float32: bool = False
) -> tuple[PayloadDescriptor, SegmentLease | None]:
    """Publish ``payload`` to shared memory; returns descriptor + call lease.

    The context's arrays land in a memoized segment (owned by the module's
    publication cache).  Arrays *outside* the context go into a secondary
    per-call segment whose :class:`SegmentLease` is returned for the caller
    to close right after its map completes; ``None`` when the payload had no
    extra arrays.

    ``float32=True`` publishes the context under the compact float32 layout
    (see :func:`context_arrays`); extra arrays outside the context stay
    exact either way.
    """
    context = find_context(payload)
    if context is None:
        raise ValueError("publish_payload needs a payload containing a CostContext")
    context_descriptor, meta = _PUBLICATIONS.publish(context, float32=float32)
    extras: dict[str, np.ndarray] = {}
    structure = _replace_leaves(payload, context, extras)
    segments = [context_descriptor]
    call_lease: SegmentLease | None = None
    if extras:
        extra_descriptor, call_lease = pack_arrays(extras)
        segments.append(extra_descriptor)
    structure_blob = pickle.dumps(structure, protocol=pickle.HIGHEST_PROTOCOL)
    # The worker-side cache key must distinguish different payload structures
    # wrapped around the same published segments (e.g. the ED-scored and
    # exhaustive stages of one brute-force call share the context segment).
    import hashlib

    token = ":".join(
        [segment.name for segment in segments]
        + [hashlib.sha1(structure_blob).hexdigest()[:12]]
    )
    descriptor = PayloadDescriptor(
        segments=tuple(segments),
        structure=structure_blob,
        context_meta=meta,
        token=token,
    )
    return descriptor, call_lease


def _restore_structure(structure: Any, context: CostContext, views: dict[str, np.ndarray]):
    if structure == _CONTEXT_MARKER:
        return context
    if isinstance(structure, _ArrayRef):
        return views[structure.key]
    if isinstance(structure, (tuple, list)):
        rebuilt = [_restore_structure(element, context, views) for element in structure]
        return tuple(rebuilt) if isinstance(structure, tuple) else rebuilt
    return structure


def materialize_payload(
    descriptor: PayloadDescriptor,
) -> tuple[Any, Callable[[], None]]:
    """Attach a published payload zero-copy.

    Returns the rebuilt payload and a closer that releases the segment
    mappings (the worker cache calls it on eviction).
    """
    attachments = [_attach_segment(segment.name) for segment in descriptor.segments]
    views: dict[str, np.ndarray] = {}
    for segment_descriptor, segment in zip(descriptor.segments, attachments):
        views.update(unpack_arrays(segment_descriptor, segment))
    context = _context_from_views(views, descriptor.context_meta)
    payload = _restore_structure(pickle.loads(descriptor.structure), context, views)

    def closer() -> None:
        for segment in attachments:
            try:
                segment.close()
            except Exception:  # pragma: no cover - mapping already gone
                pass

    return payload, closer


@dataclass(frozen=True)
class BlobDescriptor:
    """A pickled (non-context) payload parked in one shared-memory segment.

    Used by :func:`repro.runtime.parallel.parallel_map` for small payloads
    without a :class:`CostContext` (experiment settings): the pickle bytes
    ship through shared memory **once** instead of riding inside every
    dispatch tuple.  Workers copy the bytes out on first use (unpickling
    copies anyway), so they can close the mapping immediately and cache the
    object by ``token``.
    """

    name: str
    nbytes: int
    token: str


def publish_blob(blob: bytes) -> tuple[BlobDescriptor, SegmentLease]:
    """Park ``blob`` in a fresh segment; caller closes the lease after its map."""
    import hashlib

    name = f"{SEGMENT_PREFIX}_{os.getpid()}_{secrets.token_hex(4)}"
    segment = shared_memory.SharedMemory(name=name, create=True, size=max(1, len(blob)))
    # Lease immediately: a failed buffer write must not orphan the segment
    # (SHM-LIFECYCLE, same rule as pack_arrays).
    lease = SegmentLease(segment, origin="publish_blob")
    try:
        segment.buf[: len(blob)] = blob
    except BaseException:
        lease.close()
        raise
    descriptor = BlobDescriptor(
        name=name, nbytes=len(blob), token=hashlib.sha1(blob).hexdigest()
    )
    return descriptor, lease


def materialize_blob(descriptor: BlobDescriptor) -> Any:
    """Unpickle a blob payload out of its segment (mapping closed before return)."""
    segment = _attach_segment(descriptor.name)
    try:
        return pickle.loads(bytes(segment.buf[: descriptor.nbytes]))
    finally:
        segment.close()


def live_segments() -> list[str]:
    """Names of repro shared-memory segments currently in the namespace.

    POSIX only (scans ``/dev/shm``); the leak tests assert this is empty
    after shutdown.
    """
    root = "/dev/shm"
    if not os.path.isdir(root):  # pragma: no cover - non-POSIX
        return []
    # repro: noqa[FLOAT-SORT-HOTPATH] -- leak-scan diagnostics over segment name strings; never on a solve path
    return sorted(name for name in os.listdir(root) if name.startswith(SEGMENT_PREFIX))
