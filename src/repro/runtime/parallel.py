"""Process-parallel execution runtime: map work items over a worker pool.

Every enumeration- and trial-heavy path in the repo shares one execution
shape: a *payload* that is expensive to build or ship (an
:class:`~repro.cost.context.CostContext` with its pinned supports and sorted
CDF columns, or an experiment settings object), plus a stream of cheap,
independent *work items* (chunks of candidate subsets, trial descriptors).
This module runs that shape either serially (``workers <= 1``, the default —
bit-identical to calling the task function in a plain loop) or across a
:class:`multiprocessing.Pool`:

* the payload is shipped to each worker **once** — by memory inheritance
  under the ``fork`` start method (free on POSIX), by a single pickle per
  worker under ``spawn`` — never per work item;
* work items are small (chunk index ranges, trial seeds) and results come
  back in submission order, so any order-dependent reduction the caller
  performs (first-strict-minimum selection, stable sorts) matches the serial
  path exactly;
* nested parallelism is refused: a task that itself asks for workers while
  already running inside a pool worker silently degrades to serial, so
  experiment cases that call sharded brute force never fork from a fork.

Determinism contract
--------------------
``parallel_map(fn, items, workers=w)`` returns ``[fn(payload, item) for item
in items]`` for every ``w``: the same chunk boundaries are used, every chunk
is computed by the same NumPy kernels on the same inputs, and the parent
reduces in item order.  Only wall-clock time may differ between ``workers=1``
and ``workers=2+`` — never a returned value.  (Timing fields *measured
inside* a task obviously vary run to run; they vary serially too.)

Worker memory is bounded by the work-item granularity: the brute-force
shards pass ``chunk_rows`` (default
:data:`repro.cost.context.DEFAULT_CHUNK_ROWS`) through
:func:`iter_chunk_bounds`, so a worker never materializes more than
``chunk_rows`` batch rows at a time regardless of how large the enumeration
is.
"""

from __future__ import annotations

import multiprocessing
import os
from typing import Any, Callable, Iterator, Sequence, TypeVar

T = TypeVar("T")
R = TypeVar("R")

#: Set inside pool workers so nested parallel requests degrade to serial.
_IN_WORKER = False

#: Module-level slot the pool initializer fills in each worker process.
_WORKER_PAYLOAD: Any = None
_WORKER_TASK: Callable[..., Any] | None = None


def resolve_workers(workers: int | None) -> int:
    """Normalize a ``--workers`` value: ``None``/``0``/negatives mean serial.

    Inside a pool worker this always returns 1 (no nested pools).
    """
    if _IN_WORKER or workers is None:
        return 1
    return max(1, int(workers))


def available_workers() -> int:
    """CPUs the runtime could plausibly use (for defaults and benchmarks)."""
    return max(1, os.cpu_count() or 1)


def _init_worker(task: Callable[..., Any], payload: Any) -> None:
    global _IN_WORKER, _WORKER_PAYLOAD, _WORKER_TASK
    _IN_WORKER = True
    _WORKER_PAYLOAD = payload
    _WORKER_TASK = task


def _run_item(item: Any) -> Any:
    assert _WORKER_TASK is not None
    return _WORKER_TASK(_WORKER_PAYLOAD, item)


def _pool_context():
    """Prefer ``fork`` (payload shipped by inheritance) where available."""
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else "spawn")


def parallel_map(
    task: Callable[[Any, T], R],
    items: Sequence[T],
    *,
    payload: Any = None,
    workers: int | None = 1,
) -> list[R]:
    """``[task(payload, item) for item in items]``, optionally across processes.

    Parameters
    ----------
    task:
        A **module-level** function (pool workers import it by reference)
        taking ``(payload, item)``.
    items:
        Picklable work items; results are returned in the same order.
    payload:
        Shipped to each worker once via the pool initializer, then shared by
        every item that worker processes.  Build expensive state (contexts,
        pinned supports) here, not per item.
    workers:
        ``<= 1`` (the default) runs the loop in-process with no
        multiprocessing import cost and bit-identical results.

    Notes
    -----
    Results are deterministic across worker counts (see the module
    docstring's determinism contract).  Exceptions raised by ``task``
    propagate to the caller under both execution modes.
    """
    workers = resolve_workers(workers)
    items = list(items)
    if workers <= 1 or len(items) <= 1:
        return [task(payload, item) for item in items]
    workers = min(workers, len(items))
    context = _pool_context()
    with context.Pool(
        processes=workers, initializer=_init_worker, initargs=(task, payload)
    ) as pool:
        return pool.map(_run_item, items, chunksize=1)


def iter_chunk_bounds(total: int, chunk_rows: int) -> Iterator[tuple[int, int]]:
    """``(start, stop)`` bounds carving ``range(total)`` into chunks.

    Shared by the serial and sharded brute-force paths so both score the
    exact same batches — the precondition for bit-identical reductions.
    """
    chunk_rows = max(1, int(chunk_rows))
    for start in range(0, total, chunk_rows):
        yield start, min(start + chunk_rows, total)
