"""Process-parallel execution runtime: map work items over worker pools.

Every enumeration- and trial-heavy path in the repo shares one execution
shape: a *payload* that is expensive to build or ship (an
:class:`~repro.cost.context.CostContext` with its pinned supports and sorted
CDF columns, or an experiment settings object), plus a stream of cheap,
independent *work items* (chunks of candidate subsets, trial descriptors).
:func:`parallel_map` runs that shape serially (``workers <= 1``, the default
— bit-identical to calling the task function in a plain loop) or across a
process pool, choosing the cheapest transport for the payload:

* **shared memory** (the default for payloads containing a ``CostContext``):
  the payload's arrays are published once to
  :mod:`multiprocessing.shared_memory` via :mod:`repro.runtime.shm` and each
  chunk dispatch carries only a small descriptor plus its work slice; the
  persistent pool's workers attach zero-copy and memoize the attachment, so
  repeated calls over a memoized context ship the payload **zero** times;
* **blob segment** for context-free payloads (experiment settings): the
  pickle bytes sit in one shared-memory segment, unpickled once per worker;
* **pre-pickled inline** (small payloads) or a **per-call pool** with an
  initializer (the PR 3 path — payload shipped once per worker by ``fork``
  inheritance, for large payloads) when shared memory is unavailable or
  disabled.

The pool itself is persistent (:mod:`repro.runtime.pool`): lazily spawned,
grown on demand, reused across brute-force calls and experiment trials, and
shut down explicitly (or at exit).  If a worker dies mid-map, recovery is
**chunk-granular**: completed chunk results are kept, the pool is rebuilt
with bounded retries and backoff, and only the lost chunks are resubmitted;
a map that exhausts its rebuild budget finishes the *remainder* serially in
the parent (:class:`~repro.runtime.pool.PoolDegradedError` carries the
completed work).  Results are identical under every degradation path by the
determinism contract below, every recovery event is counted in
:mod:`repro.runtime.health`, and all of it can be driven deterministically
via :mod:`repro.faults`.

Deadlines (the anytime-solver plumbing)
---------------------------------------
``time_budget=SECONDS`` turns a map into an anytime computation: chunk
submission stops once the monotonic deadline passes, in-flight work drains,
and the longest completed prefix of results comes back (a short list is how
callers detect truncation — they pair the prefix with an admissible lower
bound over the chunks never run to certify ``(cost, lower_bound, gap)``;
see :mod:`repro.baselines.brute_force`).  Deadline-truncated maps are
exempt from ``det`` fingerprinting the same way pruned maps are: *which*
prefix completes is timing-dependent by design, while each returned chunk
value is still bit-identical.

Serial fallback (never slower than ``workers=1``)
-------------------------------------------------
Requesting ``workers=N`` is an *upper bound*, not a demand: the effective
worker count is clamped to :func:`available_workers`, so on a single-CPU box
every call runs serially and never pays pool or pickling overhead (the
``BENCH_PR3.json`` 0.76x regression).  Work below a threshold
(``len(items) < min_items``) also runs serially — too few chunks cannot
amortize a dispatch.  Tests and benchmarks that must exercise the pool on
small machines enable :func:`set_oversubscribe` (or set
``REPRO_OVERSUBSCRIBE=1``).

Determinism contract
--------------------
``parallel_map(fn, items, workers=w)`` returns ``[fn(payload, item) for item
in items]`` for every ``w``, with shared memory on or off: the same chunk
boundaries are used, every chunk is computed by the same NumPy kernels on
the same bytes (shared-memory views alias the publisher's arrays exactly),
and the parent reduces in item order.  Only wall-clock time may differ —
never a returned value.

Pruned maps (``incumbent_seed`` set) relax this one notch by design: tasks
may *skip* work whose admissible lower bound exceeds the shared incumbent
(:mod:`repro.runtime.incumbent`), and which rows get skipped depends on
cross-shard timing — but the callers' reductions are constructed so the
reduced result is still bit-identical at every worker count (see the
exactness contract in :mod:`repro.baselines.brute_force`).  Serial pruned
maps thread the identical incumbent through the in-process loop, so their
skip sets are deterministic too.

Worker memory is bounded by the work-item granularity: the brute-force
shards pass ``chunk_rows`` (default
:data:`repro.cost.context.DEFAULT_CHUNK_ROWS`) through
:func:`iter_chunk_bounds`, so a worker never materializes more than
``chunk_rows`` batch rows at a time regardless of how large the enumeration
is.
"""

from __future__ import annotations

import os
import pickle
import time
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Any, Callable, Iterator, Sequence, TypeVar

from .. import faults, sanitize
from .._env import env_flag, env_str
from ..sanitize import det_san
from . import health
from . import incumbent as incumbent_module
from . import pool as pool_module
from . import shm as shm_module

T = TypeVar("T")
R = TypeVar("R")

#: Without shared memory, payloads whose pickle is at most this many bytes
#: ride inline with the persistent pool's dispatch tuples (unpickled once per
#: worker); larger ones fall back to the per-call initializer pool.
INLINE_PAYLOAD_BYTES = 65536

#: Fewest work items worth dispatching to a pool at all.
DEFAULT_MIN_ITEMS = 2

_OVERSUBSCRIBE = env_flag("REPRO_OVERSUBSCRIBE", default=False)
_SHM_DEFAULT = env_flag("REPRO_SHM", default=True)

# -- compatibility state for the per-call initializer pool -------------------

_WORKER_PAYLOAD: Any = None
_WORKER_TASK: Callable[..., Any] | None = None
_WORKER_TOKEN: Any = None


def set_oversubscribe(enabled: bool) -> bool:
    """Allow pools wider than the CPU count (tests/benchmarks on small boxes).

    Returns the previous setting so callers can restore it.
    """
    global _OVERSUBSCRIBE
    previous = _OVERSUBSCRIBE
    _OVERSUBSCRIBE = bool(enabled)
    return previous


def resolve_workers(workers: int | None) -> int:
    """Normalize a ``--workers`` value: ``None``/``0``/negatives mean serial.

    Inside a pool worker this always returns 1 (no nested pools).
    """
    if pool_module.in_worker() or workers is None:
        return 1
    return max(1, int(workers))


def available_workers() -> int:
    """CPUs the runtime could plausibly use (for defaults and benchmarks)."""
    return max(1, os.cpu_count() or 1)


def effective_workers(workers: int | None, item_count: int, min_items: int = DEFAULT_MIN_ITEMS) -> int:
    """The worker count a call will actually use after every fallback rule.

    Clamps to the item count and — unless oversubscription is enabled — the
    CPU count, and collapses to serial below the item threshold.  This is
    the single place the "never slower than ``workers=1``" guarantee lives.
    """
    workers = resolve_workers(workers)
    if workers <= 1:
        return 1
    if not _OVERSUBSCRIBE:
        workers = min(workers, available_workers())
    workers = min(workers, item_count)
    if item_count < max(2, int(min_items)):
        return 1
    return max(1, workers)


def _init_worker(
    task: Callable[..., Any],
    payload: Any,
    incumbent_handles: tuple | None = None,
    incumbent_token: Any = None,
    sanitizer_names: tuple[str, ...] = (),
    fault_spec: str = "",
) -> None:
    global _WORKER_PAYLOAD, _WORKER_TASK, _WORKER_TOKEN
    pool_module._mark_in_worker()
    # Sanitizers first, so adopt_slot wraps the incumbent lock when LOCK-SAN
    # is on (same ordering as pool._init_pool_worker).
    sanitize.set_enabled(sanitizer_names)
    faults.set_enabled(fault_spec)
    incumbent_module.adopt_slot(incumbent_handles)
    _WORKER_PAYLOAD = payload
    _WORKER_TASK = task
    _WORKER_TOKEN = incumbent_token


def _run_item(item: Any) -> Any:
    assert _WORKER_TASK is not None
    incumbent_module.bind_token(_WORKER_TOKEN)
    try:
        return _WORKER_TASK(_WORKER_PAYLOAD, item)
    finally:
        incumbent_module.bind_token(None)


def _pool_context():
    """Prefer ``fork`` (payload shipped by inheritance) where available."""
    return pool_module._pool_context()


def _map_with_fresh_pool(
    task: Callable[[Any, T], R],
    items: list[T],
    payload: Any,
    workers: int,
    incumbent_token: Any = None,
) -> list[R]:
    """The PR 3 path: per-call pool, payload shipped once via initializer.

    Used for large payloads when shared memory is off — ``fork`` inheritance
    still ships the payload only once per worker.  The incumbent slot (when
    this map is pruned) travels through the same initializer.
    """
    context = _pool_context()
    handles = incumbent_module.slot_handles() if incumbent_token is not None else None
    # repro: noqa[SYNC-IN-DISPATCH] -- the sanctioned PR 3 fallback: the slot travels via initargs through _init_worker, exactly the initializer protocol the rule enforces
    with context.Pool(
        processes=workers,
        initializer=_init_worker,
        initargs=(
            task,
            payload,
            handles,
            incumbent_token,
            sanitize.enabled_names(),
            faults.enabled_spec(),
        ),
    ) as process_pool:
        return process_pool.map(_run_item, items, chunksize=1)


def parallel_map(
    task: Callable[[Any, T], R],
    items: Sequence[T],
    *,
    payload: Any = None,
    workers: int | None = 1,
    shm: bool | None = None,
    min_items: int = DEFAULT_MIN_ITEMS,
    incumbent_seed: float | None = None,
    time_budget: float | None = None,
) -> list[R]:
    """``[task(payload, item) for item in items]``, optionally across processes.

    Parameters
    ----------
    task:
        A **module-level** function (pool workers import it by reference)
        taking ``(payload, item)``.
    items:
        Picklable work items; results are returned in the same order.
    payload:
        Shipped to the workers once — via a shared-memory descriptor, a
        small inline pickle, or a per-call pool initializer — never per
        work item.  Build expensive state (contexts, pinned supports) here,
        not per item.
    workers:
        Upper bound on processes; clamped to the CPU count and the item
        count (see the module docstring's serial-fallback rules).  ``<= 1``
        (the default) runs the loop in-process with no multiprocessing
        import cost and bit-identical results.
    shm:
        Force shared-memory payload transport on or off; ``None`` uses the
        default (on when the payload contains a
        :class:`~repro.cost.context.CostContext`, overridable via the
        ``REPRO_SHM`` environment variable).  Results are identical either
        way.
    min_items:
        Fewest items worth dispatching to a pool; below it the call is
        serial.
    incumbent_seed:
        Activate the shared branch-and-bound incumbent
        (:mod:`repro.runtime.incumbent`) for this map, starting at this
        value (``inf`` for "no heuristic seed").  Chunk tasks reach it via
        :func:`repro.runtime.incumbent.active` to prune work and publish
        achieved costs; serial execution threads the identical incumbent
        through the in-process loop.  ``None`` (the default) binds nothing
        and tasks see no incumbent.  Pruning changes *which* rows tasks
        evaluate, never the reduced result — see the exactness contract in
        :mod:`repro.baselines.brute_force`.
    time_budget:
        Wall-clock budget in seconds for the whole map.  When it runs out,
        submission stops, in-flight chunks drain, and the longest completed
        *prefix* of results is returned — possibly empty, always shorter
        than ``items`` (which is how callers detect truncation).  ``None``
        (the default) never truncates.  See the module docstring's deadline
        section for the anytime-certificate pattern built on this.

    Notes
    -----
    Results are deterministic across worker counts and payload transports
    (see the module docstring's determinism contract).  Exceptions raised by
    ``task`` propagate to the caller under every execution mode.
    """
    items = list(items)
    workers = effective_workers(workers, len(items), min_items)
    pruned = incumbent_seed is not None
    deadline = None if time_budget is None else time.monotonic() + float(time_budget)

    def _audited(results: list[R], used_workers: int, *, partial: bool = False) -> list[R]:
        # DET-SAN fingerprints per-chunk results of un-pruned maps so a
        # workers=1 vs workers=N divergence is caught at the first
        # differing chunk; no-op unless REPRO_SANITIZE enables ``det``.
        # Deadline-truncated maps are exempt like pruned ones: a shorter
        # result list under the same (task, items, payload) key would
        # false-positive against a completed run.
        if not partial:
            det_san.record_map(
                task, items, payload, results, workers=used_workers, pruned=pruned
            )
        return results

    if workers <= 1:
        serial_results = _serial_map(task, items, payload, incumbent_seed, deadline)
        if len(serial_results) < len(items):
            health.record(deadline_hits=1)
            return _audited(serial_results, 1, partial=True)
        return _audited(serial_results, 1)

    incumbent_token = (
        incumbent_module.activate(incumbent_seed) if incumbent_seed is not None else None
    )
    transport = _resolve_transport(payload, shm)
    if transport is None:
        # Large payload without shared memory: a per-call pool with fork
        # inheritance beats pickling the payload into every dispatch
        # tuple.
        return _audited(
            _map_with_fresh_pool(task, items, payload, workers, incumbent_token),
            workers,
        )
    spec, call_lease, fallback_spec = transport
    try:
        pooled = pool_module.executor().map(
            task,
            items,
            spec,
            workers,
            incumbent_token,
            fallback_spec=fallback_spec,
            deadline=deadline,
        )
        if len(pooled) < len(items):
            return _audited(pooled, workers, partial=True)
        return _audited(pooled, workers)
    except pool_module.PoolDegradedError as degraded:
        # The pool broke more times than the retry budget allows.  Keep
        # every chunk that did complete and finish only the remainder
        # serially in the parent — identical results by the determinism
        # contract, degraded wall clock, all of it counted.
        health.record(serial_fallbacks=1)
        merged = _complete_serially(
            task, items, payload, dict(degraded.completed), incumbent_token, deadline
        )
        if len(merged) < len(items):
            health.record(deadline_hits=1)
            return _audited(merged, workers, partial=True)
        return _audited(merged, workers)
    except BrokenProcessPool:
        # Last-resort net (e.g. the executor broke before the map loop
        # could take over): rerun the whole map serially.
        health.record(serial_fallbacks=1)
        serial_results = _serial_map(task, items, payload, incumbent_seed, deadline)
        if len(serial_results) < len(items):
            health.record(deadline_hits=1)
            return _audited(serial_results, 1, partial=True)
        return _audited(serial_results, 1)
    finally:
        if call_lease is not None:
            call_lease.close()


def _context_dtype_float32() -> bool:
    """Whether ``REPRO_CONTEXT_DTYPE=float32`` opts publications into float32.

    Read per call (not at import) so tests and long-lived processes can flip
    it; only shared-memory publications of pruned ordered maps honor it —
    every other transport ships the exact float64 payload.
    """
    return env_str("REPRO_CONTEXT_DTYPE") == "float32"


def _resolve_transport(
    payload: Any, shm: bool | None, *, float32: bool = False
) -> tuple[tuple, Any, Callable[[], tuple] | None] | None:
    """Pick the payload transport: ``(spec, call_lease, fallback_spec)``.

    ``None`` means "use the per-call fresh pool" (large payload, no shared
    memory).  ``float32`` requests the compact float32 context layout for
    shared-memory publication; all other transports (and the pickled
    fallback a worker retries on after a failed attach) carry the exact
    float64 payload, which chunk tasks detect via ``context.float32``.
    """
    if shm is None:
        shm = _SHM_DEFAULT
    # ``shm=False`` / ``REPRO_SHM=0`` must mean NO shared-memory segments at
    # all (e.g. containers with a tiny /dev/shm), not just "no zero-copy
    # context" — every transport below honors it.
    shm_usable = shm and shm_module.shm_available()
    use_shm = shm_usable and shm_module.find_context(payload) is not None
    call_lease = None
    if use_shm:
        descriptor, call_lease = shm_module.publish_payload(payload, float32=float32)
        spec: tuple = ("shm", descriptor)
    elif payload is None:
        spec = ("none",)
    else:
        blob = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
        if shm_usable:
            # Context-free payload (settings, policies): park the pickle in
            # one segment so its bytes ship once, not once per item.
            blob_descriptor, call_lease = shm_module.publish_blob(blob)
            spec = ("blob", blob_descriptor)
        elif len(blob) <= INLINE_PAYLOAD_BYTES:
            import hashlib

            spec = ("pickled", hashlib.sha1(blob).hexdigest(), blob)
        else:
            return None
    fallback_spec: Callable[[], tuple] | None = None
    if spec[0] in ("shm", "blob"):

        def _pickled_fallback() -> tuple:
            # Lazily built (at most once per map) when a worker reports a
            # failed segment attach: that one chunk re-rides as plain
            # pickle bytes instead of poisoning the whole pool.
            import hashlib

            fallback_blob = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
            return ("pickled", hashlib.sha1(fallback_blob).hexdigest(), fallback_blob)

        fallback_spec = _pickled_fallback
    return spec, call_lease, fallback_spec


@dataclass
class MapOutcome:
    """What a best-first ordered map produced.

    ``results`` is keyed by *original* item index (whatever the submission
    order was), so reductions can walk ``sorted(results)`` and keep the
    submission-order first-strict-minimum tie rule.  ``deadline_hit`` /
    ``gap_target_hit`` say why submission stopped early, if it did;
    ``complete`` is the common "nothing skipped" check.
    """

    results: dict[int, Any]
    deadline_hit: bool = False
    gap_target_hit: bool = False

    def complete(self, total: int) -> bool:
        return len(self.results) == total


def parallel_map_ordered(
    task: Callable[[Any, T], R],
    items: Sequence[T],
    *,
    payload: Any = None,
    workers: int | None = 1,
    shm: bool | None = None,
    min_items: int = DEFAULT_MIN_ITEMS,
    incumbent_seed: float,
    time_budget: float | None = None,
    order: Sequence[int] | None = None,
    chunk_bounds: Sequence[float] | None = None,
    gap_target: float | None = None,
    float32_ok: bool = False,
) -> MapOutcome:
    """Best-first :func:`parallel_map`: priority submission + gap-target stop.

    The enumerators' anytime branch-and-bound entry point.  ``order`` is a
    permutation of item indexes (ascending admissible chunk bound — the
    caller computes the bounds up front); chunks are *submitted* in that
    order while results come back keyed by original index, so the final
    reduction is order-independent.  ``chunk_bounds[i]`` must lower-bound
    every solution in item ``i``; with ``gap_target`` set, submission stops
    as soon as the certified gap between the live incumbent and the minimum
    outstanding chunk bound reaches the target
    (:class:`repro.runtime.incumbent.GapTracker`) — exactly like a
    ``time_budget`` deadline, and combinable with one.  ``incumbent_seed``
    is required: best-first scheduling only exists for pruned maps, which
    also makes every ordered map exempt from ``det`` fingerprinting (like
    any pruned map, its *skip set* is timing-dependent while the reduced
    result is not).

    ``float32_ok`` marks the task as implementing the float32 survivor
    protocol (it checks ``context.float32`` and returns margin-zone
    survivors for exact parent-side re-scoring); only then — and only when
    ``REPRO_CONTEXT_DTYPE=float32`` is set and shared memory carries the
    payload — is the compact float32 layout published.  Serial execution
    and every fallback transport stay exact float64.
    """
    items = list(items)
    total = len(items)
    submission = list(range(total)) if order is None else [int(i) for i in order]
    if len(submission) != total or set(submission) != set(range(total)):
        raise ValueError("order must be a permutation of the item indexes")
    if gap_target is not None and chunk_bounds is None:
        raise ValueError("gap_target requires chunk_bounds")
    workers = effective_workers(workers, total, min_items)
    deadline = None if time_budget is None else time.monotonic() + float(time_budget)
    if workers <= 1:
        return _serial_ordered(
            task, items, payload, incumbent_seed, deadline, submission, chunk_bounds, gap_target
        )
    incumbent_token = incumbent_module.activate(incumbent_seed)
    tracker: incumbent_module.GapTracker | None = None
    stop_check: Callable[[list[int]], bool] | None = None
    if gap_target is not None:
        assert chunk_bounds is not None
        bounds = chunk_bounds
        tracker = incumbent_module.GapTracker(
            gap_target, incumbent_module.parent_handle(incumbent_token)
        )

        def _stop_check(pending_indexes: list[int]) -> bool:
            assert tracker is not None
            outstanding = min(float(bounds[i]) for i in pending_indexes)
            return tracker.should_stop(outstanding)

        stop_check = _stop_check
    publish_float32 = bool(float32_ok) and _context_dtype_float32()
    transport = _resolve_transport(payload, shm, float32=publish_float32)
    if transport is None:
        # Large payload, no shared memory: the per-call fresh pool has no
        # mid-map submission loop to stop, so the map runs to completion in
        # submission order (sound — completing everything trivially meets
        # any gap target; the certificate just reports gap 0).
        values = _map_with_fresh_pool(
            task, [items[i] for i in submission], payload, workers, incumbent_token
        )
        return MapOutcome(dict(zip(submission, values)))
    spec, call_lease, fallback_spec = transport
    try:
        results, deadline_hit, stopped = pool_module.executor().map_ordered(
            task,
            items,
            spec,
            workers,
            incumbent_token,
            fallback_spec=fallback_spec,
            deadline=deadline,
            order=submission,
            stop_check=stop_check,
        )
        return MapOutcome(results, deadline_hit, stopped)
    except pool_module.PoolDegradedError as degraded:
        # Retry budget exhausted: keep completed chunks, finish the
        # remainder serially in order — with the same gap/deadline stops.
        health.record(serial_fallbacks=1)
        return _finish_ordered(
            task,
            items,
            payload,
            dict(degraded.completed),
            incumbent_token,
            deadline,
            submission,
            chunk_bounds,
            tracker,
        )
    except BrokenProcessPool:
        health.record(serial_fallbacks=1)
        return _serial_ordered(
            task, items, payload, incumbent_seed, deadline, submission, chunk_bounds, gap_target
        )
    finally:
        if call_lease is not None:
            call_lease.close()


def _suffix_minima(submission: list[int], chunk_bounds: Sequence[float] | None) -> list[float]:
    """``suffix[p] = min(bounds[submission[p:]])`` — the outstanding bound.

    Under ascending-bound submission this is just ``bounds[submission[p]]``,
    but computing the true suffix minimum keeps the gap certificate sound
    for *any* caller-supplied order.
    """
    suffix = [float("inf")] * (len(submission) + 1)
    if chunk_bounds is not None:
        for position in range(len(submission) - 1, -1, -1):
            suffix[position] = min(
                float(chunk_bounds[submission[position]]), suffix[position + 1]
            )
    return suffix


def _serial_ordered(
    task: Callable[[Any, T], R],
    items: list[T],
    payload: Any,
    incumbent_seed: float,
    deadline: float | None,
    submission: list[int],
    chunk_bounds: Sequence[float] | None,
    gap_target: float | None,
) -> MapOutcome:
    """The in-process best-first loop: same stop rules, same incumbent."""
    suffix = _suffix_minima(submission, chunk_bounds)
    results: dict[int, Any] = {}
    deadline_hit = False
    with incumbent_module.serial_incumbent(incumbent_seed) as handle:
        tracker = (
            incumbent_module.GapTracker(gap_target, handle) if gap_target is not None else None
        )
        for position, index in enumerate(submission):
            if deadline is not None and time.monotonic() >= deadline:
                deadline_hit = True
                break
            if tracker is not None and tracker.should_stop(suffix[position]):
                break
            results[index] = task(payload, items[index])
    gap_hit = tracker is not None and tracker.hit
    if deadline_hit:
        health.record(deadline_hits=1)
    if gap_hit:
        health.record(gap_target_hits=1)
    return MapOutcome(results, deadline_hit, gap_hit)


def _finish_ordered(
    task: Callable[[Any, T], R],
    items: list[T],
    payload: Any,
    completed: dict[int, Any],
    incumbent_token: Any,
    deadline: float | None,
    submission: list[int],
    chunk_bounds: Sequence[float] | None,
    tracker: "incumbent_module.GapTracker | None",
) -> MapOutcome:
    """Finish a degraded ordered map in the parent, keeping completed chunks.

    The suffix minimum at each position conservatively includes already
    completed chunks' bounds — a smaller outstanding bound only *delays* the
    gap stop, never unsoundly triggers it.
    """
    suffix = _suffix_minima(submission, chunk_bounds)
    deadline_hit = False
    if incumbent_token is not None:
        incumbent_module.bind_token(incumbent_token)
    try:
        for position, index in enumerate(submission):
            if index in completed:
                continue
            if deadline is not None and time.monotonic() >= deadline:
                deadline_hit = True
                break
            if tracker is not None and tracker.should_stop(suffix[position]):
                break
            completed[index] = task(payload, items[index])
    finally:
        if incumbent_token is not None:
            incumbent_module.bind_token(None)
    gap_hit = tracker is not None and tracker.hit
    if deadline_hit:
        health.record(deadline_hits=1)
    if gap_hit:
        health.record(gap_target_hits=1)
    return MapOutcome(completed, deadline_hit, gap_hit)


def _serial_map(
    task: Callable[[Any, T], R],
    items: list[T],
    payload: Any,
    incumbent_seed: float | None,
    deadline: float | None = None,
) -> list[R]:
    """The in-process chunk loop, with the incumbent threaded through.

    Serial pruning is deterministic: chunks run in submission order and each
    sees exactly the improvements of its predecessors.  A ``deadline``
    (monotonic instant) truncates the loop between chunks, returning the
    completed prefix.
    """
    if incumbent_seed is None:
        return _serial_loop(task, items, payload, deadline)
    with incumbent_module.serial_incumbent(incumbent_seed):
        return _serial_loop(task, items, payload, deadline)


def _serial_loop(
    task: Callable[[Any, T], R], items: list[T], payload: Any, deadline: float | None
) -> list[R]:
    if deadline is None:
        return [task(payload, item) for item in items]
    results: list[R] = []
    for item in items:
        if time.monotonic() >= deadline:
            break
        results.append(task(payload, item))
    return results


def _complete_serially(
    task: Callable[[Any, T], R],
    items: list[T],
    payload: Any,
    completed: dict[int, R],
    incumbent_token: Any,
    deadline: float | None,
) -> list[R]:
    """Finish a degraded map in the parent, reusing completed chunk results.

    The parent owns the incumbent slot (it activated it), so binding the
    token threads the *same* shared incumbent through the serial remainder
    that the pooled chunks used — the skip-set may differ, the reduced
    result cannot (the callers' exactness contract).
    """
    missing = [index for index in range(len(items)) if index not in completed]
    if incumbent_token is not None:
        incumbent_module.bind_token(incumbent_token)
    try:
        for index in missing:
            if deadline is not None and time.monotonic() >= deadline:
                break
            completed[index] = task(payload, items[index])
    finally:
        if incumbent_token is not None:
            incumbent_module.bind_token(None)
    prefix: list[R] = []
    for index in range(len(items)):
        if index not in completed:
            break
        prefix.append(completed[index])
    return prefix


def iter_chunk_bounds(total: int, chunk_rows: int) -> Iterator[tuple[int, int]]:
    """``(start, stop)`` bounds carving ``range(total)`` into chunks.

    Shared by the serial and sharded brute-force paths so both score the
    exact same batches — the precondition for bit-identical reductions.
    """
    chunk_rows = max(1, int(chunk_rows))
    for start in range(0, total, chunk_rows):
        yield start, min(start + chunk_rows, total)
