"""Process-wide degradation telemetry for the crash-tolerant runtime.

PR 8 gave the runtime graceful-degradation paths — chunk-granular crash
recovery with pool rebuilds, per-call transport fallback after a failed
shared-memory attach, deadline-truncated maps, last-resort serial
completion.  Degrading *silently* would be worse than crashing: a solve
that quietly ran serially after five pool rebuilds looks identical to a
healthy one in its results (that is the determinism contract working as
designed) while being 10x slower and masking an environment problem.

This module is the flight recorder: a process-wide :class:`RuntimeHealth`
counter block that every recovery path increments through :func:`record`.
The experiment harness snapshots it around each run and attaches the
*delta* to the record summary when anything fired, and the
``fault_recovery`` bench family uses the same counters to prove completed
chunks are not recomputed after an injected crash
(``chunks_submitted == chunks + retries``).

Counters only ever increase; :func:`snapshot` + :func:`delta` give
callers interval views without resetting global state under anyone
else's feet (:func:`reset` exists for tests and benchmarks that own the
whole interval).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass


@dataclass
class RuntimeHealth:
    """Counters for every degradation event the runtime can survive."""

    #: Executor rebuilds after a ``BrokenProcessPool`` (one per crash round).
    pool_rebuilds: int = 0
    #: Chunk resubmissions of any kind (crash requeues + transport fallbacks).
    retries: int = 0
    #: In-flight chunk results lost to a pool break and recomputed.
    lost_chunks: int = 0
    #: Per-call downgrades from shm/blob transport to ``("pickled", ...)``.
    transport_fallbacks: int = 0
    #: Maps truncated by a ``time_budget`` deadline (partial results returned).
    deadline_hits: int = 0
    #: Maps that exhausted pool retries and completed serially in the parent.
    serial_fallbacks: int = 0
    #: Chunk dispatches submitted to the pool (includes resubmissions).
    chunks_submitted: int = 0
    #: Chunk results harvested from the pool (completed work kept).
    chunks_completed: int = 0

    def as_dict(self) -> dict[str, int]:
        return dataclasses.asdict(self)

    def any(self) -> bool:
        """Whether any degradation fired (submission/completion traffic aside)."""
        return any(
            getattr(self, field.name)
            for field in dataclasses.fields(self)
            if field.name not in ("chunks_submitted", "chunks_completed")
        )


_HEALTH = RuntimeHealth()


def record(**counts: int) -> None:
    """Increment named counters; an unknown name is a programming error."""
    for name, amount in counts.items():
        setattr(_HEALTH, name, getattr(_HEALTH, name) + amount)


def snapshot() -> RuntimeHealth:
    """An immutable-by-convention copy of the counters right now."""
    return dataclasses.replace(_HEALTH)


def delta(since: RuntimeHealth) -> RuntimeHealth:
    """Counter movement between ``since`` (an earlier snapshot) and now."""
    current = snapshot()
    return RuntimeHealth(
        **{
            field.name: getattr(current, field.name) - getattr(since, field.name)
            for field in dataclasses.fields(RuntimeHealth)
        }
    )


def reset() -> None:
    """Zero every counter (tests/benchmarks that own the whole interval)."""
    for field in dataclasses.fields(RuntimeHealth):
        setattr(_HEALTH, field.name, 0)


__all__ = ["RuntimeHealth", "delta", "record", "reset", "snapshot"]
