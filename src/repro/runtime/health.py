"""Process-wide degradation telemetry for the crash-tolerant runtime.

PR 8 gave the runtime graceful-degradation paths — chunk-granular crash
recovery with pool rebuilds, per-call transport fallback after a failed
shared-memory attach, deadline-truncated maps, last-resort serial
completion.  Degrading *silently* would be worse than crashing: a solve
that quietly ran serially after five pool rebuilds looks identical to a
healthy one in its results (that is the determinism contract working as
designed) while being 10x slower and masking an environment problem.

This module is the flight recorder: a process-wide :class:`RuntimeHealth`
counter block that every recovery path increments through :func:`record`.
The experiment harness snapshots it around each run and attaches the
*delta* to the record summary when anything fired, and the
``fault_recovery`` bench family uses the same counters to prove completed
chunks are not recomputed after an injected crash
(``chunks_submitted == chunks + retries``).

Counters only ever increase; :func:`snapshot` + :func:`delta` give
callers interval views without resetting global state under anyone
else's feet (:func:`reset` exists for tests and benchmarks that own the
whole interval).

Long-lived processes (PR 9's ``repro serve``) hold snapshots open for
minutes — a sliding-window circuit breaker and a ``/stats`` endpoint each
keep their own baseline — while tests and benchmarks sharing the process
may call :func:`reset` at any time.  A reset between a window's
``snapshot()`` and its ``delta()`` used to produce *negative* deltas and a
broken audit identity (``submitted == completed + retries`` no longer
held per window).  Snapshots therefore carry a **reset generation**: when
the generation moved, :func:`delta` knows the counters restarted from
zero and re-baselines instead of subtracting a stale snapshot.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass


@dataclass
class RuntimeHealth:
    """Counters for every degradation event the runtime can survive."""

    #: Executor rebuilds after a ``BrokenProcessPool`` (one per crash round).
    pool_rebuilds: int = 0
    #: Chunk resubmissions of any kind (crash requeues + transport fallbacks).
    retries: int = 0
    #: In-flight chunk results lost to a pool break and recomputed.
    lost_chunks: int = 0
    #: Per-call downgrades from shm/blob transport to ``("pickled", ...)``.
    transport_fallbacks: int = 0
    #: Maps truncated by a ``time_budget`` deadline (partial results returned).
    deadline_hits: int = 0
    #: Maps that stopped submission early because the certified optimality
    #: gap reached the caller's ``gap_target`` (requested precision attained).
    gap_target_hits: int = 0
    #: Maps that exhausted pool retries and completed serially in the parent.
    serial_fallbacks: int = 0
    #: Chunk dispatches submitted to the pool (includes resubmissions).
    chunks_submitted: int = 0
    #: Chunk results harvested from the pool (completed work kept).
    chunks_completed: int = 0

    def as_dict(self) -> dict[str, int]:
        return dataclasses.asdict(self)

    def any(self) -> bool:
        """Whether any degradation fired (submission/completion traffic aside).

        ``gap_target_hits`` is excluded too: stopping because the requested
        precision was *attained* is goal fulfilment, not degradation.
        """
        return any(
            getattr(self, field.name)
            for field in dataclasses.fields(self)
            if field.name
            not in ("chunks_submitted", "chunks_completed", "gap_target_hits")
        )

    def audit_ok(self) -> bool:
        """The audit identity: every submission completed or was retried.

        Holds at quiescence for the whole process and for any
        generation-consistent window (:func:`delta`): a chunk submitted to
        the pool either comes back (``chunks_completed``) or is requeued
        and counted (``retries``).  A map with chunks still in flight is
        legitimately mid-identity, so callers should evaluate this between
        maps — the server's ``/healthz`` does it when no request holds the
        pool.
        """
        return self.chunks_submitted == self.chunks_completed + self.retries


_HEALTH = RuntimeHealth()

#: Bumped by every :func:`reset`; snapshots remember the generation they
#: were taken in so :func:`delta` can detect a restart-from-zero.
_GENERATION = 0


def record(**counts: int) -> None:
    """Increment named counters; an unknown name is a programming error."""
    for name, amount in counts.items():
        setattr(_HEALTH, name, getattr(_HEALTH, name) + amount)


def generation() -> int:
    """The current reset generation (monotone; moves only on :func:`reset`)."""
    return _GENERATION


def snapshot() -> RuntimeHealth:
    """An immutable-by-convention copy of the counters right now.

    The copy is tagged with the current reset generation so a later
    :func:`delta` against it survives an interleaved :func:`reset`.
    """
    copy = dataclasses.replace(_HEALTH)
    copy._generation = _GENERATION  # type: ignore[attr-defined]
    return copy


def delta(since: RuntimeHealth) -> RuntimeHealth:
    """Counter movement between ``since`` (an earlier snapshot) and now.

    If a :func:`reset` happened after ``since`` was taken, the counters
    restarted from zero: the stale baseline is discarded and the delta is
    everything accumulated in the current generation — never negative, and
    the per-window audit identity (:meth:`RuntimeHealth.audit_ok`) keeps
    holding.  Snapshots from before this API existed carry no generation
    tag and are trusted as current-generation baselines.
    """
    current = snapshot()
    if getattr(since, "_generation", _GENERATION) != _GENERATION:
        since = RuntimeHealth()
    movement = RuntimeHealth(
        **{
            field.name: getattr(current, field.name) - getattr(since, field.name)
            for field in dataclasses.fields(RuntimeHealth)
        }
    )
    movement._generation = _GENERATION  # type: ignore[attr-defined]
    return movement


def reset() -> None:
    """Zero every counter (tests/benchmarks that own the whole interval).

    Bumps the reset generation, so windows opened before the reset
    re-baseline at zero instead of going negative (see :func:`delta`).
    """
    global _GENERATION
    _GENERATION += 1
    for field in dataclasses.fields(RuntimeHealth):
        setattr(_HEALTH, field.name, 0)


__all__ = ["RuntimeHealth", "delta", "generation", "record", "reset", "snapshot"]
