"""Persistent, lazily-spawned worker pool shared by every parallel call.

PR 3's runtime created a fresh ``multiprocessing.Pool`` per call, which
bought simplicity at the cost the benchmarks measured: every brute-force
call and every experiment paid pool startup, and on low-core boxes the
startup dominated (the ``BENCH_PR3.json`` 0.76x case).  This module keeps
**one** :class:`concurrent.futures.ProcessPoolExecutor` alive across calls:

* lazily spawned on first use and grown (never shrunk) when a later call
  asks for more workers;
* safe against forks: the executor is keyed to the PID that created it, so
  a process that forked with a stale executor discards it and spawns a
  fresh one instead of deadlocking on inherited pipes;
* safe against nesting: pool workers mark themselves via :func:`in_worker`
  and any parallel request made inside one degrades to serial;
* safe against worker death: a :class:`BrokenProcessPool` marks the
  executor dead (it is rebuilt lazily) and the caller falls back to running
  the map serially — results are identical by the determinism contract;
* shut down explicitly via :func:`shutdown` (also registered ``atexit``),
  which closes the executor *and* unlinks every cached shared-memory
  publication.

Dispatch protocol
-----------------
Each work item travels as a small ``(task, payload_spec, item,
incumbent_token)`` tuple.  The incumbent token (``None`` for unpruned maps)
references the shared branch-and-bound incumbent slot
(:mod:`repro.runtime.incumbent`): workers bind it before invoking the task,
so every chunk of a pruned enumeration reads the freshest cross-shard bound
and publishes its own improvements.  The slot itself is created in the
parent *before* the executor spawns and ships to the workers through the
pool initializer (inherited by ``fork``, pickled at process creation under
``spawn``) — synchronized primitives cannot ride in per-item dispatch
tuples.  The payload spec is one of

* ``("none",)`` — no payload;
* ``("shm", descriptor)`` — a :class:`~repro.runtime.shm.PayloadDescriptor`
  for payloads containing a ``CostContext``; the worker attaches the
  shared-memory segments zero-copy and memoizes the materialized payload by
  the descriptor's token, closing evicted attachments;
* ``("blob", descriptor)`` — a :class:`~repro.runtime.shm.BlobDescriptor`
  for small context-free payloads (experiment settings): the pickle bytes
  sit in one segment, workers unpickle once and memoize by token;
* ``("pickled", token, blob)`` — fallback when shared memory is
  unavailable: the pre-pickled payload rides with each item but is
  unpickled once per worker and memoized by token.

Workers therefore receive payload *bytes* at most once each under shared
memory — no matter how many chunks they process or how many calls reuse the
same context — and payload *objects* are materialized once per worker under
every transport.
"""

from __future__ import annotations

import atexit
import os
from collections import OrderedDict, deque
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Any, Callable, Iterable

from .. import sanitize
from . import incumbent as incumbent_module
from . import shm as shm_module

#: Materialized payloads a worker keeps before evicting least-recently-used.
WORKER_PAYLOAD_CACHE = 4

# -- worker-side state -------------------------------------------------------

_IN_WORKER = False
_PAYLOAD_CACHE: "OrderedDict[str, tuple[Any, Callable[[], None] | None]]" = OrderedDict()


def in_worker() -> bool:
    """Whether this process is a pool worker (nested pools degrade to serial)."""
    return _IN_WORKER


def _mark_in_worker() -> None:
    global _IN_WORKER
    _IN_WORKER = True


def _init_pool_worker(
    incumbent_handles: tuple | None, sanitizer_names: tuple[str, ...] = ()
) -> None:
    """Persistent-pool initializer: mark the worker, adopt the incumbent slot.

    Sanitizer names ride the initargs channel like the incumbent handles do
    (spawned workers do inherit ``REPRO_SANITIZE`` via the environment, but
    the explicit handoff also covers sanitizers enabled programmatically
    with :func:`repro.sanitize.set_enabled` after import).  Enabling must
    happen *before* adopt_slot so the worker's incumbent lock gets wrapped.
    """
    _mark_in_worker()
    sanitize.set_enabled(sanitizer_names)
    incumbent_module.adopt_slot(incumbent_handles)


def _cache_payload(token: str, payload: Any, closer: Callable[[], None] | None) -> None:
    _PAYLOAD_CACHE[token] = (payload, closer)
    while len(_PAYLOAD_CACHE) > WORKER_PAYLOAD_CACHE:
        _, (_, old_closer) = _PAYLOAD_CACHE.popitem(last=False)
        if old_closer is not None:
            old_closer()


def _resolve_payload(spec: tuple) -> Any:
    kind = spec[0]
    if kind == "none":
        return None
    if kind == "pickled":
        token, blob = spec[1], spec[2]
        cached = _PAYLOAD_CACHE.get(token)
        if cached is not None:
            _PAYLOAD_CACHE.move_to_end(token)
            return cached[0]
        import pickle

        payload = pickle.loads(blob)
        _cache_payload(token, payload, None)
        return payload
    if kind == "blob":
        descriptor = spec[1]
        cached = _PAYLOAD_CACHE.get(descriptor.token)
        if cached is not None:
            _PAYLOAD_CACHE.move_to_end(descriptor.token)
            return cached[0]
        payload = shm_module.materialize_blob(descriptor)
        _cache_payload(descriptor.token, payload, None)
        return payload
    if kind == "shm":
        descriptor = spec[1]
        cached = _PAYLOAD_CACHE.get(descriptor.token)
        if cached is not None:
            _PAYLOAD_CACHE.move_to_end(descriptor.token)
            return cached[0]
        payload, closer = shm_module.materialize_payload(descriptor)
        _cache_payload(descriptor.token, payload, closer)
        return payload
    raise ValueError(f"unknown payload spec kind: {kind!r}")


def _dispatch(args: tuple) -> Any:
    task, spec, item, incumbent_token = args
    incumbent_module.bind_token(incumbent_token)
    try:
        return task(_resolve_payload(spec), item)
    finally:
        incumbent_module.bind_token(None)


# -- parent-side executor ----------------------------------------------------


def _pool_context():
    """Prefer ``fork`` (cheap startup, inherited modules) where available."""
    import multiprocessing

    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else "spawn")


class PersistentPool:
    """A grow-only process pool that survives across calls.

    The module-level instance behind :func:`executor` is what the runtime
    uses; standalone instances exist for benchmarks that need to measure
    per-call pool startup against persistent reuse.
    """

    def __init__(self) -> None:
        self._executor: ProcessPoolExecutor | None = None
        self._workers = 0
        self._pid: int | None = None

    @property
    def started(self) -> bool:
        return self._executor is not None and self._pid == os.getpid()

    @property
    def workers(self) -> int:
        return self._workers if self.started else 0

    def ensure(self, workers: int) -> ProcessPoolExecutor:
        """The live executor, (re)spawned or grown to ``workers`` if needed."""
        workers = max(1, int(workers))
        if self._executor is not None and self._pid != os.getpid():
            # Forked child inherited a stale executor: its pipes belong to
            # the parent.  Drop it without joining (the parent owns the
            # worker processes) and spawn fresh ones.
            self._executor = None
            self._workers = 0
        if self._executor is not None and workers > self._workers:
            self.shutdown()
        if self._executor is None:
            # The incumbent slot must exist before the workers do: fork
            # inherits it, spawn pickles it through the initializer args
            # (synchronized primitives cannot travel in dispatch tuples).
            incumbent_handles = incumbent_module.slot_handles()
            self._executor = ProcessPoolExecutor(
                max_workers=workers,
                mp_context=_pool_context(),
                initializer=_init_pool_worker,
                initargs=(incumbent_handles, sanitize.enabled_names()),
            )
            self._workers = workers
            self._pid = os.getpid()
        return self._executor

    def map(
        self,
        task: Callable[[Any, Any], Any],
        items: Iterable[Any],
        spec: tuple,
        workers: int,
        incumbent_token: Any = None,
    ) -> list[Any]:
        """``[task(payload, item) for item in items]`` across the pool.

        Results come back in submission order (the determinism contract).
        The pool is grow-only, so it may hold more processes than this call
        requested; at most ``workers`` items are kept in flight regardless,
        keeping ``workers`` a real concurrency cap per call.
        ``incumbent_token`` (from :func:`repro.runtime.incumbent.activate`)
        rides in every dispatch tuple so chunk tasks of a pruned enumeration
        share one branch-and-bound incumbent.  Raises
        :class:`BrokenProcessPool` after marking the pool for rebuild when a
        worker dies mid-map; task-level exceptions propagate as-is.
        """
        executor = self.ensure(workers)
        items = list(items)
        results: list[Any] = [None] * len(items)
        window: "deque[tuple[int, Any]]" = deque()
        try:
            for index, item in enumerate(items):
                while len(window) >= workers:
                    done_index, future = window.popleft()
                    results[done_index] = future.result()
                window.append(
                    (index, executor.submit(_dispatch, (task, spec, item, incumbent_token)))
                )
            while window:
                done_index, future = window.popleft()
                results[done_index] = future.result()
            return results
        except BrokenProcessPool:
            self.shutdown()
            raise

    def shutdown(self) -> None:
        """Stop the workers (idempotent).  Cached publications are separate."""
        if self._executor is not None:
            try:
                self._executor.shutdown(wait=True, cancel_futures=True)
            except Exception:  # pragma: no cover - interpreter teardown races
                pass
            self._executor = None
            self._workers = 0


_POOL = PersistentPool()


def executor() -> PersistentPool:
    """The process-wide persistent pool."""
    return _POOL


def shutdown() -> None:
    """Stop the persistent pool and unlink every shared-memory publication.

    Safe to call at any point; the pool respawns lazily on next use.  This
    is the explicit teardown the shared-memory lifecycle tests exercise —
    after it returns, no repro-owned segments remain in the namespace.
    """
    _POOL.shutdown()
    shm_module.close_all_publications()


atexit.register(shutdown)
