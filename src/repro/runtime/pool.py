"""Persistent, lazily-spawned worker pool shared by every parallel call.

PR 3's runtime created a fresh ``multiprocessing.Pool`` per call, which
bought simplicity at the cost the benchmarks measured: every brute-force
call and every experiment paid pool startup, and on low-core boxes the
startup dominated (the ``BENCH_PR3.json`` 0.76x case).  This module keeps
**one** :class:`concurrent.futures.ProcessPoolExecutor` alive across calls:

* lazily spawned on first use and grown (never shrunk) when a later call
  asks for more workers;
* safe against forks: the executor is keyed to the PID that created it, so
  a process that forked with a stale executor discards it and spawns a
  fresh one instead of deadlocking on inherited pipes;
* safe against nesting: pool workers mark themselves via :func:`in_worker`
  and any parallel request made inside one degrades to serial;
* safe against worker death: on :class:`BrokenProcessPool`,
  :meth:`PersistentPool.map` keeps every chunk result already harvested
  (futures that completed before the break retain their values), rebuilds
  the executor with exponential backoff, and resubmits **only the lost
  chunks** — bounded by :data:`MAP_MAX_RETRIES` rounds before raising
  :class:`PoolDegradedError` carrying the completed work, so the caller can
  finish the remainder serially instead of recomputing everything (results
  are identical either way by the determinism contract);
* bounded in time: an optional monotonic ``deadline`` stops chunk
  submission when it passes and returns the longest completed prefix — the
  plumbing the anytime-solver ``time_budget`` stands on;
* degradable per transport: a worker that cannot attach a shared-memory
  segment (injected or real) returns a :class:`_TransportFailure` marker
  instead of poisoning the pool, and the chunk is resubmitted on the
  caller-provided ``("pickled", ...)`` fallback spec;
* shut down explicitly via :func:`shutdown` (also registered ``atexit``),
  which closes the executor *and* unlinks every cached shared-memory
  publication, tolerating workers the OS already reaped (a crashed or
  OOM-killed worker must not print a spurious traceback at interpreter
  exit).

Every recovery event increments :mod:`repro.runtime.health` counters, and
every degradation path can be driven deterministically in CI through
:mod:`repro.faults` (``REPRO_FAULTS=crash:p=0.05,...``): the injection
points in :func:`_dispatch` fire on a pure hash of the chunk's
``(index, attempt)`` key, so retries re-roll instead of re-crashing
forever.

Dispatch protocol
-----------------
Each work item travels as a small ``(task, payload_spec, item,
incumbent_token)`` tuple.  The incumbent token (``None`` for unpruned maps)
references the shared branch-and-bound incumbent slot
(:mod:`repro.runtime.incumbent`): workers bind it before invoking the task,
so every chunk of a pruned enumeration reads the freshest cross-shard bound
and publishes its own improvements.  The slot itself is created in the
parent *before* the executor spawns and ships to the workers through the
pool initializer (inherited by ``fork``, pickled at process creation under
``spawn``) — synchronized primitives cannot ride in per-item dispatch
tuples.  The payload spec is one of

* ``("none",)`` — no payload;
* ``("shm", descriptor)`` — a :class:`~repro.runtime.shm.PayloadDescriptor`
  for payloads containing a ``CostContext``; the worker attaches the
  shared-memory segments zero-copy and memoizes the materialized payload by
  the descriptor's token, closing evicted attachments;
* ``("blob", descriptor)`` — a :class:`~repro.runtime.shm.BlobDescriptor`
  for small context-free payloads (experiment settings): the pickle bytes
  sit in one segment, workers unpickle once and memoize by token;
* ``("pickled", token, blob)`` — fallback when shared memory is
  unavailable: the pre-pickled payload rides with each item but is
  unpickled once per worker and memoized by token.

Workers therefore receive payload *bytes* at most once each under shared
memory — no matter how many chunks they process or how many calls reuse the
same context — and payload *objects* are materialized once per worker under
every transport.
"""

from __future__ import annotations

import atexit
import os
import time
from collections import OrderedDict, deque
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Any, Callable, Iterable

from .. import faults, sanitize
from . import health
from . import incumbent as incumbent_module
from . import shm as shm_module

#: Materialized payloads a worker keeps before evicting least-recently-used.
WORKER_PAYLOAD_CACHE = 4

#: Pool-rebuild rounds a single map survives before degrading to serial.
MAP_MAX_RETRIES = 3

#: First rebuild backoff in seconds; doubles per round up to the cap.  A
#: crashed worker usually died for an environmental reason (OOM pressure,
#: cgroup kill) that an immediate respawn would hit again — but a fork
#: respawn itself is cheap, so the first retry is near-immediate and only
#: repeated failures earn the long sleeps.
MAP_BACKOFF_INITIAL = 0.01
MAP_BACKOFF_CAP = 1.0


class PoolDegradedError(RuntimeError):
    """A map exhausted its pool-rebuild budget.

    Carries ``completed`` — every chunk result harvested before giving up,
    keyed by item index — so the caller finishes only the remainder
    serially instead of recomputing work that already succeeded.
    """

    def __init__(self, message: str, completed: dict[int, Any]) -> None:
        super().__init__(message)
        self.completed = completed


@dataclass(frozen=True)
class _TransportFailure:
    """Worker-side marker: the payload transport failed, the pool is fine.

    A failed shared-memory attach must not look like a task error (which
    would abort the whole map) or kill the worker (which would cost a pool
    rebuild): the worker reports the failure as an ordinary *result* and
    the parent resubmits the chunk on the pickled fallback transport.
    """

    kind: str
    error: str

# -- worker-side state -------------------------------------------------------

_IN_WORKER = False
_PAYLOAD_CACHE: "OrderedDict[str, tuple[Any, Callable[[], None] | None]]" = OrderedDict()


def in_worker() -> bool:
    """Whether this process is a pool worker (nested pools degrade to serial)."""
    return _IN_WORKER


def _mark_in_worker() -> None:
    global _IN_WORKER
    _IN_WORKER = True


def _init_pool_worker(
    incumbent_handles: tuple | None,
    sanitizer_names: tuple[str, ...] = (),
    fault_spec: str = "",
) -> None:
    """Persistent-pool initializer: mark the worker, adopt the incumbent slot.

    Sanitizer names and the armed fault spec ride the initargs channel like
    the incumbent handles do (spawned workers do inherit ``REPRO_SANITIZE``
    / ``REPRO_FAULTS`` via the environment, but the explicit handoff also
    covers anything enabled programmatically with ``set_enabled`` after
    import).  Enabling sanitizers must happen *before* adopt_slot so the
    worker's incumbent lock gets wrapped.
    """
    _mark_in_worker()
    sanitize.set_enabled(sanitizer_names)
    faults.set_enabled(fault_spec)
    incumbent_module.adopt_slot(incumbent_handles)


def _cache_payload(token: str, payload: Any, closer: Callable[[], None] | None) -> None:
    _PAYLOAD_CACHE[token] = (payload, closer)
    while len(_PAYLOAD_CACHE) > WORKER_PAYLOAD_CACHE:
        _, (_, old_closer) = _PAYLOAD_CACHE.popitem(last=False)
        if old_closer is not None:
            old_closer()


def _resolve_payload(spec: tuple) -> Any:
    kind = spec[0]
    if kind == "none":
        return None
    if kind == "pickled":
        token, blob = spec[1], spec[2]
        cached = _PAYLOAD_CACHE.get(token)
        if cached is not None:
            _PAYLOAD_CACHE.move_to_end(token)
            return cached[0]
        import pickle

        payload = pickle.loads(blob)
        _cache_payload(token, payload, None)
        return payload
    if kind == "blob":
        descriptor = spec[1]
        cached = _PAYLOAD_CACHE.get(descriptor.token)
        if cached is not None:
            _PAYLOAD_CACHE.move_to_end(descriptor.token)
            return cached[0]
        payload = shm_module.materialize_blob(descriptor)
        _cache_payload(descriptor.token, payload, None)
        return payload
    if kind == "shm":
        descriptor = spec[1]
        cached = _PAYLOAD_CACHE.get(descriptor.token)
        if cached is not None:
            _PAYLOAD_CACHE.move_to_end(descriptor.token)
            return cached[0]
        payload, closer = shm_module.materialize_payload(descriptor)
        _cache_payload(descriptor.token, payload, closer)
        return payload
    raise ValueError(f"unknown payload spec kind: {kind!r}")


def _dispatch(args: tuple) -> Any:
    task, spec, item, incumbent_token, fault_key = args
    # Injection points for the chaos harness: the crash fires before any
    # work happens (the honest worst case — the whole chunk is lost) and
    # both draws are keyed by the chunk's (index, attempt) so a chunk that
    # crashed at attempt 0 re-rolls at attempt 1 instead of killing every
    # rebuilt pool forever.
    faults.inject("crash", "pool.dispatch", token=fault_key)
    faults.inject("slow", "pool.dispatch", token=fault_key)
    incumbent_module.bind_token(incumbent_token)
    try:
        try:
            payload = _resolve_payload(spec)
        except (faults.FaultInjected, OSError) as error:
            if spec[0] in ("shm", "blob"):
                # A failed segment attach degrades this one call to the
                # pickled transport instead of poisoning the pool.
                return _TransportFailure(kind=spec[0], error=repr(error))
            raise
        return task(payload, item)
    finally:
        incumbent_module.bind_token(None)


# -- parent-side executor ----------------------------------------------------


def _pool_context():
    """Prefer ``fork`` (cheap startup, inherited modules) where available."""
    import multiprocessing

    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else "spawn")


class PersistentPool:
    """A grow-only process pool that survives across calls.

    The module-level instance behind :func:`executor` is what the runtime
    uses; standalone instances exist for benchmarks that need to measure
    per-call pool startup against persistent reuse.
    """

    def __init__(self) -> None:
        self._executor: ProcessPoolExecutor | None = None
        self._workers = 0
        self._pid: int | None = None
        self._config: tuple = ()

    @property
    def started(self) -> bool:
        return self._executor is not None and self._pid == os.getpid()

    @property
    def workers(self) -> int:
        return self._workers if self.started else 0

    def ensure(self, workers: int) -> ProcessPoolExecutor:
        """The live executor, (re)spawned or grown to ``workers`` if needed."""
        workers = max(1, int(workers))
        if self._executor is not None and self._pid != os.getpid():
            # Forked child inherited a stale executor: its pipes belong to
            # the parent.  Drop it without joining (the parent owns the
            # worker processes) and spawn fresh ones.
            self._executor = None
            self._workers = 0
        # Sanitizers and fault specs reach workers through initargs, i.e.
        # they are frozen at spawn time: a pool that outlives a
        # set_enabled() call would silently keep the old configuration, so
        # config drift forces a respawn (tests and the chaos bench arm
        # faults programmatically between maps and rely on this).
        config = (sanitize.enabled_names(), faults.enabled_spec())
        if self._executor is not None and (workers > self._workers or config != self._config):
            self.shutdown()
        if self._executor is None:
            # The incumbent slot must exist before the workers do: fork
            # inherits it, spawn pickles it through the initializer args
            # (synchronized primitives cannot travel in dispatch tuples).
            incumbent_handles = incumbent_module.slot_handles()
            self._executor = ProcessPoolExecutor(
                max_workers=workers,
                mp_context=_pool_context(),
                initializer=_init_pool_worker,
                initargs=(incumbent_handles, sanitize.enabled_names(), faults.enabled_spec()),
            )
            self._workers = workers
            self._pid = os.getpid()
            self._config = config
        return self._executor

    def map(
        self,
        task: Callable[[Any, Any], Any],
        items: Iterable[Any],
        spec: tuple,
        workers: int,
        incumbent_token: Any = None,
        *,
        fallback_spec: Callable[[], tuple] | None = None,
        deadline: float | None = None,
    ) -> list[Any]:
        """``[task(payload, item) for item in items]`` across the pool.

        Results come back in item order (the determinism contract).  The
        pool is grow-only, so it may hold more processes than this call
        requested; at most ``workers`` items are kept in flight regardless,
        keeping ``workers`` a real concurrency cap per call.
        ``incumbent_token`` (from :func:`repro.runtime.incumbent.activate`)
        rides in every dispatch tuple so chunk tasks of a pruned enumeration
        share one branch-and-bound incumbent.

        Crash recovery is chunk-granular: when a worker dies mid-map
        (:class:`BrokenProcessPool`), every future that already completed
        keeps its result, only the lost in-flight chunks are requeued (with
        a bumped attempt counter, so injected crashes re-roll), and the
        executor is rebuilt with exponential backoff.  After
        :data:`MAP_MAX_RETRIES` rebuild rounds the map raises
        :class:`PoolDegradedError` carrying the completed results so the
        caller can finish the remainder serially.

        ``fallback_spec`` (lazily called at most once) provides the
        ``("pickled", ...)`` spec a chunk is resubmitted on when its worker
        reports a failed shared-memory attach (:class:`_TransportFailure`).
        ``deadline`` (a ``time.monotonic`` instant) stops chunk submission
        once passed; in-flight work is drained and the longest completed
        prefix is returned — a short list, which is how callers detect
        truncation.  Task-level exceptions propagate as-is.
        """
        items = list(items)
        results, _, _ = self._map_impl(
            task,
            items,
            spec,
            workers,
            incumbent_token,
            fallback_spec=fallback_spec,
            deadline=deadline,
        )
        total = len(items)
        if len(results) == total:
            return [results[i] for i in range(total)]
        prefix: list[Any] = []
        for i in range(total):
            if i not in results:
                break
            prefix.append(results[i])
        return prefix

    def map_ordered(
        self,
        task: Callable[[Any, Any], Any],
        items: Iterable[Any],
        spec: tuple,
        workers: int,
        incumbent_token: Any = None,
        *,
        fallback_spec: Callable[[], tuple] | None = None,
        deadline: float | None = None,
        order: "list[int] | None" = None,
        stop_check: Callable[[list[int]], bool] | None = None,
    ) -> tuple[dict[int, Any], bool, bool]:
        """Best-first variant of :meth:`map`: explicit submission order.

        ``order`` is a permutation of the item indexes (ascending admissible
        bound, for best-first scheduling); chunks are *submitted* in that
        order but results come back keyed by original index, so the caller's
        reduction can keep the submission-order first-strict-minimum rule.
        ``stop_check`` receives the indexes not yet submitted before each new
        submission and returns ``True`` to stop submitting (the ``gap_target``
        predicate); in-flight work is still drained.  Returns
        ``(results_by_index, deadline_hit, stopped_by_check)``.
        """
        return self._map_impl(
            task,
            items,
            spec,
            workers,
            incumbent_token,
            fallback_spec=fallback_spec,
            deadline=deadline,
            order=order,
            stop_check=stop_check,
        )

    def _map_impl(
        self,
        task: Callable[[Any, Any], Any],
        items: Iterable[Any],
        spec: tuple,
        workers: int,
        incumbent_token: Any = None,
        *,
        fallback_spec: Callable[[], tuple] | None = None,
        deadline: float | None = None,
        order: "list[int] | None" = None,
        stop_check: Callable[[list[int]], bool] | None = None,
    ) -> tuple[dict[int, Any], bool, bool]:
        workers = max(1, int(workers))
        executor = self.ensure(workers)
        items = list(items)
        total = len(items)
        results: dict[int, Any] = {}
        #: (index, attempt, spec) triples not yet in flight.
        submission = range(total) if order is None else order
        pending: "deque[tuple[int, int, tuple]]" = deque((i, 0, spec) for i in submission)
        window: "deque[tuple[int, int, tuple, Any]]" = deque()
        rebuilds = 0
        backoff = MAP_BACKOFF_INITIAL
        resolved_fallback: tuple | None = None
        deadline_hit = False
        stopped = False
        while pending or window:
            try:
                while pending and len(window) < workers:
                    if deadline is not None and time.monotonic() >= deadline:
                        deadline_hit = True
                        break
                    if stop_check is not None and stop_check(
                        [entry[0] for entry in pending]
                    ):
                        # The caller's predicate (certified gap <= target)
                        # says the never-submitted chunks can no longer
                        # matter; drain in-flight work and stop.
                        stopped = True
                        pending.clear()
                        break
                    index, attempt, item_spec = pending.popleft()
                    # Counted before submit(): a broken pool can surface as
                    # a submit-time BrokenProcessPool, and the popped chunk
                    # is then requeued as a retry — the audit identity
                    # (submitted == completed + retries) needs the attempt
                    # on the books either way.
                    health.record(chunks_submitted=1)
                    future = executor.submit(
                        _dispatch,
                        (task, item_spec, items[index], incumbent_token, (index, attempt)),
                    )
                    window.append((index, attempt, item_spec, future))
                if not window:
                    break  # deadline stopped submission with nothing in flight
                index, attempt, item_spec, future = window.popleft()
                value = future.result()
            except BrokenProcessPool:
                # Harvest what survived: completed futures keep their
                # results even after the executor breaks.  Everything else
                # is requeued at the front with a bumped attempt.
                lost = [(index, attempt + 1, item_spec)]
                while window:
                    s_index, s_attempt, s_spec, s_future = window.popleft()
                    if s_future.done() and s_future.exception() is None:
                        results[s_index] = s_future.result()
                        health.record(chunks_completed=1)
                    else:
                        lost.append((s_index, s_attempt + 1, s_spec))
                pending.extendleft(reversed(lost))
                rebuilds += 1
                health.record(pool_rebuilds=1, lost_chunks=len(lost), retries=len(lost))
                self.shutdown()
                if rebuilds > MAP_MAX_RETRIES:
                    raise PoolDegradedError(
                        f"pool broke {rebuilds} times during one map"
                        f" ({len(results)}/{total} chunks completed); degrading to serial",
                        dict(results),
                    ) from None
                time.sleep(backoff)
                backoff = min(backoff * 2.0, MAP_BACKOFF_CAP)
                executor = self.ensure(workers)
                continue
            if isinstance(value, _TransportFailure):
                if fallback_spec is None:
                    raise RuntimeError(
                        f"payload transport ({value.kind}) failed in a worker with no"
                        f" fallback available: {value.error}"
                    )
                if resolved_fallback is None:
                    resolved_fallback = fallback_spec()
                pending.appendleft((index, attempt + 1, resolved_fallback))
                health.record(transport_fallbacks=1, retries=1)
                continue
            results[index] = value
            health.record(chunks_completed=1)
        if deadline_hit or (pending and not stopped):
            health.record(deadline_hits=1)
        if stopped:
            health.record(gap_target_hits=1)
        return results, deadline_hit or bool(pending), stopped

    def shutdown(self) -> None:
        """Stop the workers (idempotent).  Cached publications are separate.

        Must tolerate workers the OS already reaped: after an injected
        crash (``os._exit``) or an OOM kill, the executor's process table
        still lists the corpse, and a naive teardown at interpreter exit
        prints a spurious traceback.  State is detached *first* so a
        failure during teardown can never wedge the pool in a half-dead
        state, then any processes the executor failed to reap are
        terminated and joined individually, swallowing races with the OS.
        """
        executor, self._executor = self._executor, None
        self._workers = 0
        if executor is None:
            return
        workers = list((getattr(executor, "_processes", None) or {}).values())
        try:
            executor.shutdown(wait=True, cancel_futures=True)
        except Exception:
            # Executor-level teardown failed (broken pool, interpreter
            # teardown race): reap whatever is still reapable ourselves.
            for process in workers:
                try:
                    if process.is_alive():
                        process.terminate()
                    process.join(timeout=1.0)
                except (OSError, ValueError, AssertionError):  # pragma: no cover
                    pass  # already reaped by the OS — exactly the tolerated case


_POOL = PersistentPool()


def executor() -> PersistentPool:
    """The process-wide persistent pool."""
    return _POOL


def shutdown() -> None:
    """Stop the persistent pool and unlink every shared-memory publication.

    Safe to call at any point; the pool respawns lazily on next use.  This
    is the explicit teardown the shared-memory lifecycle tests exercise —
    after it returns, no repro-owned segments remain in the namespace.
    """
    _POOL.shutdown()
    shm_module.close_all_publications()


atexit.register(shutdown)
