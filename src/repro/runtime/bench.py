"""Machine-readable benchmark runner (``python -m repro bench``).

Times the repo's hot execution paths — including the two PR-3 additions, the
sharded brute-force enumeration and the incremental candidate-column splice —
and writes one JSON document (``BENCH_PR3.json`` by default) so future PRs
have a perf trajectory to compare against instead of anecdotes.

Cases
-----
``brute_force_parallel_speedup``
    Serial vs ``workers>=2`` wall clock of the same restricted brute-force
    enumeration.  The target is >=2x at 2+ workers; it is only *achievable*
    with >=2 physical CPUs, so the record carries ``cpu_count`` and a
    ``target_met`` flag rather than asserting (the paired pytest benchmark
    asserts when enough cores exist).
``wang_zhang_column_splice``
    Rebuild-vs-splice on the coordinate-descent context: a from-scratch
    :class:`~repro.cost.context.CostContext` build (plus the evaluator sort
    of every column) against
    :meth:`~repro.cost.context.CostContext.replace_candidate_columns`
    splicing only the fine-grid columns — the exact operation
    ``wang_zhang_1d`` performs per coordinate step.
``batch_cost_kernel`` / ``local_search_sweep``
    The PR-1/PR-2 guards (batched E[max] vs scalar loop; round-amortized
    rest profiles vs per-point re-sorts) re-measured so the trajectory stays
    comparable across PRs.
``context_store_memoization``
    Cold build vs memoized :class:`~repro.runtime.store.ContextStore` hit.

Every case reports best-of-``repeats`` seconds; timings are environment
dependent by nature, so the document also records the Python/NumPy versions
and CPU count it was produced with.
"""

from __future__ import annotations

import json
import os
import platform
import sys
import time
from math import comb
from pathlib import Path
from typing import Callable

import numpy as np

from ..baselines.brute_force import brute_force_restricted_assigned
from ..cost.context import CostContext
from ..cost.expected import assigned_cost_evaluator
from ..workloads.synthetic import gaussian_clusters, line_workload
from .parallel import available_workers
from .store import ContextStore

#: Default output path for the checked-in benchmark trajectory.
DEFAULT_OUTPUT = "BENCH_PR3.json"
#: Wall-clock speedup the parallel brute force targets at 2+ workers.
PARALLEL_SPEEDUP_TARGET = 2.0
#: Wall-clock speedup the column splice targets over a full rebuild.
SPLICE_SPEEDUP_TARGET = 2.0


def _best_of(function: Callable[[], object], repeats: int) -> float:
    best = np.inf
    for _ in range(max(1, repeats)):
        start = time.perf_counter()
        function()
        best = min(best, time.perf_counter() - start)
    return float(best)


def bench_brute_force_parallel(repeats: int = 3, workers: int | None = None) -> dict:
    """Serial vs sharded brute-force enumeration on one mid-size instance."""
    dataset, _ = gaussian_clusters(n=30, z=4, dimension=2, k_true=3, seed=7)
    candidates = dataset.all_locations()[:40]
    kwargs = dict(candidates=candidates, chunk_rows=256)
    workers = max(2, int(workers) if workers is not None else 2)

    serial = brute_force_restricted_assigned(dataset, 3, workers=1, **kwargs)
    serial_seconds = _best_of(
        lambda: brute_force_restricted_assigned(dataset, 3, workers=1, **kwargs), repeats
    )
    parallel = brute_force_restricted_assigned(dataset, 3, workers=workers, **kwargs)
    parallel_seconds = _best_of(
        lambda: brute_force_restricted_assigned(dataset, 3, workers=workers, **kwargs), repeats
    )
    assert parallel.expected_cost == serial.expected_cost  # determinism contract
    speedup = serial_seconds / max(parallel_seconds, 1e-12)
    return {
        "serial_seconds": serial_seconds,
        "parallel_seconds": parallel_seconds,
        "workers": workers,
        "cpu_count": available_workers(),
        "subsets": comb(candidates.shape[0], 3),
        "speedup": speedup,
        "target": PARALLEL_SPEEDUP_TARGET,
        "target_met": bool(speedup >= PARALLEL_SPEEDUP_TARGET),
        "note": "target requires >= 2 physical CPUs; results are bit-identical at every worker count",
    }


def bench_column_splice(repeats: int = 5) -> dict:
    """Full context rebuild vs incremental fine-grid column splice."""
    dataset, _ = line_workload(n=100, z=12, segment_count=3, seed=11)
    k = 3
    coarse = np.linspace(-1.0, 1.0, 33)
    fine = np.linspace(-0.05, 0.05, 21)
    centers = dataset.expected_points()[:k]
    candidates = np.vstack([centers, coarse.reshape(-1, 1), fine.reshape(-1, 1)])
    fine_columns = np.arange(k + 33, k + 33 + 21)

    def rebuild() -> None:
        context = CostContext(dataset, candidates)
        context.evaluator  # the per-sweep cost the splice avoids

    context = CostContext(dataset, candidates)
    context.evaluator
    shift = [0.0]

    def splice() -> None:
        shift[0] += 1e-4
        context.replace_candidate_columns(fine_columns, (fine + shift[0]).reshape(-1, 1))

    rebuild_seconds = _best_of(rebuild, repeats)
    splice_seconds = _best_of(splice, repeats)
    speedup = rebuild_seconds / max(splice_seconds, 1e-12)
    return {
        "rebuild_seconds": rebuild_seconds,
        "splice_seconds": splice_seconds,
        "replaced_columns": int(fine_columns.shape[0]),
        "total_columns": int(candidates.shape[0]),
        "speedup": speedup,
        "target": SPLICE_SPEEDUP_TARGET,
        "target_met": bool(speedup >= SPLICE_SPEEDUP_TARGET),
    }


def bench_batch_cost_kernel(repeats: int = 3) -> dict:
    """Batched E[max] kernel vs a scalar per-assignment loop (PR-1 guard)."""
    dataset, _ = gaussian_clusters(n=100, z=6, dimension=2, k_true=4, seed=12)
    centers = dataset.expected_points()[:4]
    evaluator = assigned_cost_evaluator(dataset, centers)
    rng = np.random.default_rng(0)
    column_sets = rng.integers(0, 4, size=(128, dataset.size))
    batch_seconds = _best_of(lambda: evaluator.costs(column_sets), repeats)
    scalar_seconds = _best_of(lambda: [evaluator.cost(row) for row in column_sets], repeats)
    return {
        "batch_seconds": batch_seconds,
        "scalar_seconds": scalar_seconds,
        "rows": 128,
        "speedup": scalar_seconds / max(batch_seconds, 1e-12),
    }


def bench_local_search_sweep(repeats: int = 3) -> dict:
    """Round-amortized rest profiles vs per-point re-sorts (PR-2 guard)."""
    dataset, _ = gaussian_clusters(n=200, z=8, dimension=2, k_true=4, seed=3)
    centers = dataset.expected_points()[:4]
    evaluator = assigned_cost_evaluator(dataset, centers)
    rng = np.random.default_rng(0)
    assignment = rng.integers(0, centers.shape[0], size=dataset.size)
    all_columns = np.arange(centers.shape[0])

    def per_point_round() -> None:
        for point in range(dataset.size):
            profile = evaluator.rest_profile(assignment, point)
            evaluator.move_costs(profile, all_columns)

    sweep = evaluator.local_search_sweep(assignment)

    def amortized_round() -> None:
        for point in range(dataset.size):
            profile = sweep.rest_profile(point)
            evaluator.move_costs(profile, all_columns)

    per_point_seconds = _best_of(per_point_round, repeats)
    amortized_seconds = _best_of(amortized_round, repeats)
    return {
        "per_point_seconds": per_point_seconds,
        "amortized_seconds": amortized_seconds,
        "speedup": per_point_seconds / max(amortized_seconds, 1e-12),
    }


def bench_context_store(repeats: int = 3) -> dict:
    """Cold CostContext build vs a ContextStore hit on the same pair."""
    dataset, _ = gaussian_clusters(n=80, z=6, dimension=2, k_true=4, seed=21)
    candidates = dataset.all_locations()[:64]

    def cold() -> None:
        CostContext(dataset, candidates).evaluator

    store = ContextStore()
    store.get(dataset, candidates).evaluator

    def hit() -> None:
        store.get(dataset, candidates)

    cold_seconds = _best_of(cold, repeats)
    hit_seconds = _best_of(hit, repeats)
    return {
        "cold_build_seconds": cold_seconds,
        "memoized_hit_seconds": hit_seconds,
        "speedup": cold_seconds / max(hit_seconds, 1e-12),
        "hits": store.hits,
        "misses": store.misses,
    }


CASES: dict[str, Callable[[], dict]] = {
    "brute_force_parallel_speedup": bench_brute_force_parallel,
    "wang_zhang_column_splice": bench_column_splice,
    "batch_cost_kernel": bench_batch_cost_kernel,
    "local_search_sweep": bench_local_search_sweep,
    "context_store_memoization": bench_context_store,
}


def run_bench(output: str | Path | None = DEFAULT_OUTPUT, *, cases: list[str] | None = None) -> dict:
    """Execute the benchmark cases and (optionally) write the JSON document."""
    selected = cases or list(CASES)
    unknown = [name for name in selected if name not in CASES]
    if unknown:
        raise ValueError(f"unknown benchmark cases: {unknown}; known: {sorted(CASES)}")
    document = {
        "schema": "repro-bench/1",
        "pr": "PR3",
        "created_unix": time.time(),
        "environment": {
            "python": sys.version.split()[0],
            "numpy": np.__version__,
            "platform": platform.platform(),
            "cpu_count": os.cpu_count(),
        },
        "cases": {},
    }
    for name in selected:
        document["cases"][name] = CASES[name]()
    if output is not None:
        Path(output).write_text(json.dumps(document, indent=2) + "\n")
    return document
