"""Machine-readable benchmark runner (``python -m repro bench``).

Times the repo's hot execution paths — including the PR-6 addition: the
``repro lint`` static checker over the whole tree, which gates CI ahead of
tier-1 — and writes one JSON document (``BENCH_PR10.json`` by default) so
future PRs have a perf trajectory to compare against instead of anecdotes.
``--compare`` diffs a run against an earlier document (e.g. the checked-in
``BENCH_PR5.json``): shared ``*_seconds`` metrics get a delta line, cases
present in only one document are *listed* (a PR adding or retiring cases is
normal, not an error), and >20% regressions exit with code 3 so CI can
distinguish "slower" (warn) from "crashed" (fail).  ``--quick`` runs the
fast smoke subset for CI.

Cases
-----
``brute_force_prune_restricted``
    The PR-5 acceptance case: the pruned restricted brute force against
    ``prune=False`` on one n=12, m=16, k=4 instance — identical results,
    recorded ``prune_rate`` / ``evaluated_rows`` / ``pruned_rows``, target
    >= 3x wall clock with > 50% of subset rows pruned.
``brute_force_prune_unassigned``
    The same differential for the unassigned enumeration (the bound
    min-reduces pinned supports instead of the expected matrix).
``brute_force_parallel_speedup``
    Serial vs ``workers>=2`` wall clock of the same restricted brute-force
    enumeration.  On boxes with fewer than 2 CPUs the runtime now *clamps*
    to serial (the PR-3 0.76x regression), so the recorded "parallel" run
    equals serial there and the record says so via ``serial_fallback``.
``best_first_gap_trajectory``
    PR-10 scheduling win: a deterministic replay of the gap-vs-chunks
    curve under submission order and under ascending-bound best-first
    order — best-first must certify a 1% gap in at most half the chunks.
``prune_rate_two_level``
    PR-10 bound win: the two-level (level-1 max pair) bound plus best-first
    incumbent must prune > 80% of the n=12, m=16, k=4 subset rows, with
    results bit-identical to ``prune=False``.
``context_float32_bandwidth``
    PR-10 bandwidth win: total shared-memory segment bytes of the compact
    ``REPRO_CONTEXT_DTYPE=float32`` context layout vs the exact float64
    publication — target ratio <= 0.6 (supports halve; the expected matrix
    stays exact for argmin label selection).
``shm_dispatch_bytes``
    Bytes a chunk dispatch ships under shared memory (descriptor only)
    against pickling the full brute-force payload — the zero-copy win,
    deterministic, target >= 10x.
``persistent_pool_amortization``
    >= 20 small brute-force calls on one memoized context: fresh pool per
    call (PR-3 behavior) vs the persistent pool with memoized shared-memory
    publication.  Target >= 2x.
``context_store_disk_spill``
    Two *separate processes* building the same context through a spill-
    enabled :class:`~repro.runtime.store.ContextStore`: the second process
    must hit the disk tier instead of rebuilding.
``unassigned_rank_merge``
    The rank-merge unassigned sweep against the historical per-row
    float-sort sweep on the same context — bit-identical costs, target
    >= 1.5x.
``wang_zhang_column_splice`` / ``batch_cost_kernel`` / ``local_search_sweep``
    / ``context_store_memoization``
    The PR-1/2/3 guards re-measured so the trajectory stays comparable.
``lint_full_tree``
    ``repro lint`` wall clock over ``src/repro`` (the CI gate's latency) and
    the self-check that the tree lints clean (``findings`` must be 0).
``fault_recovery``
    The PR-8 acceptance case: the restricted brute force under injected
    worker crashes (``crash:p=0.1``) against the fault-free run — results
    bit-identical, completed chunks never recomputed (health-counter
    audit), recovery overhead < 2x.
``serve_latency``
    The PR-9 server over a real socket: p50/p95 service time and req/s for
    ``/v1/solve`` and ``/v1/score``, plus the single-flight contract — N
    concurrent first-touch solves of one instance cost exactly one context
    build and return bit-identical costs.

Every case reports best-of-``repeats`` seconds; timings are environment
dependent by nature, so the document also records the Python/NumPy versions,
CPU count, git revision and an ISO timestamp.
"""

from __future__ import annotations

import datetime
import json
import os
import pickle
import platform
import subprocess
import sys
import tempfile
import time
from dataclasses import dataclass
from itertools import combinations
from math import comb
from pathlib import Path
from typing import Callable

import numpy as np

from ..baselines.brute_force import brute_force_restricted_assigned, brute_force_unassigned
from ..cost.context import CostContext
from ..cost.expected import assigned_cost_evaluator
from ..workloads.synthetic import gaussian_clusters, line_workload
from . import pool as pool_module
from . import shm as shm_module
from .incumbent import certified_gap
from .parallel import available_workers, set_oversubscribe
from .store import ContextStore

#: Default output path for the checked-in benchmark trajectory.
DEFAULT_OUTPUT = "BENCH_PR10.json"
#: Wall-clock speedup the pruned restricted brute force targets.
PRUNE_SPEEDUP_TARGET = 3.0
#: Fraction of subset rows the acceptance instance must prune.
PRUNE_RATE_TARGET = 0.5
#: Wall-clock speedup the parallel brute force targets at 2+ workers.
PARALLEL_SPEEDUP_TARGET = 2.0
#: Wall-clock speedup the column splice targets over a full rebuild.
SPLICE_SPEEDUP_TARGET = 2.0
#: Dispatch-bytes reduction the shared-memory protocol targets.
SHM_DISPATCH_BYTES_TARGET = 10.0
#: Wall-clock speedup the persistent pool targets across many small calls.
POOL_AMORTIZATION_TARGET = 2.0
#: Wall-clock speedup the rank-merge sweep targets over the float sort.
RANK_MERGE_SPEEDUP_TARGET = 1.5
#: Chunk-count ratio (best-first / submission order) to reach a 1% certified
#: gap — the best-first scheduler must need at most half the chunks.
BEST_FIRST_CHUNK_RATIO_TARGET = 0.5
#: Fraction of subset rows the two-level bound must prune on the PR-10
#: acceptance instance.
TWO_LEVEL_PRUNE_RATE_TARGET = 0.8
#: Shared-memory segment bytes ratio (float32 layout / exact float64) the
#: compact context publication targets.
FLOAT32_BYTES_RATIO_TARGET = 0.6
#: Slowdown (new/old) past which ``--compare`` reports a regression.
REGRESSION_TOLERANCE = 1.2
#: Timings below this are dominated by noise; ``--compare`` skips them.
REGRESSION_FLOOR_SECONDS = 1e-3
#: Metrics measuring a deliberately-degraded reference leg (the slow
#: baseline a case exists to beat), shown in the delta table but never
#: flagged as regressions — only product paths gate.
REFERENCE_METRICS = frozenset({"float_sort_seconds", "per_call_pool_seconds"})


@dataclass(frozen=True)
class CompareSpec:
    """Per-case regression gate for ``--compare``.

    The global 1 ms floor + 20% tolerance fit seconds-scale cases but
    misfire on sub-millisecond kernels: their timings sit *below* the
    floor, so real 5x regressions in the hottest inner loops were never
    flagged.  A case registered in :data:`CASE_COMPARE` trades a lower
    floor for a wider tolerance (fast timers jitter proportionally more);
    everything else keeps the historical defaults, byte-for-byte.
    """

    floor_seconds: float = REGRESSION_FLOOR_SECONDS
    tolerance: float = REGRESSION_TOLERANCE


#: Per-case overrides of the ``--compare`` regression gate; cases absent
#: here use ``CompareSpec()`` (the historical global floor + tolerance).
CASE_COMPARE: dict[str, CompareSpec] = {
    # Sub-millisecond kernel sweeps: gate from 10 µs up, with 2x headroom
    # because µs-scale timings jitter far more than the seconds-scale ones
    # the 20% default was tuned for.
    "unassigned_rank_merge": CompareSpec(floor_seconds=1e-5, tolerance=2.0),
    "wang_zhang_column_splice": CompareSpec(floor_seconds=1e-5, tolerance=2.0),
    # Whole-tree lint passes: multi-second and steady, but the dataflow
    # pass scales with tree size — allow 50% so organic repo growth between
    # PRs does not read as a perf regression.
    "lint_full_tree": CompareSpec(floor_seconds=1e-2, tolerance=1.5),
    "lint_dataflow_full_tree": CompareSpec(floor_seconds=1e-2, tolerance=1.5),
}


def compare_spec(case_name: str) -> CompareSpec:
    """The regression gate for one case (default spec unless overridden)."""
    return CASE_COMPARE.get(case_name, CompareSpec())


def _best_of(function: Callable[[], object], repeats: int) -> float:
    best = np.inf
    for _ in range(max(1, repeats)):
        start = time.perf_counter()
        function()
        best = min(best, time.perf_counter() - start)
    return float(best)


def _prune_case_fields(pruned_result, unpruned_result, pruned_seconds, no_prune_seconds) -> dict:
    """Shared reporting for the pruning differential cases."""
    assert pruned_result.expected_cost == unpruned_result.expected_cost  # exactness contract
    assert np.array_equal(pruned_result.centers, unpruned_result.centers)
    metadata = pruned_result.metadata
    total = metadata["total_rows"]
    prune_rate = metadata["pruned_rows"] / max(total, 1)
    speedup = no_prune_seconds / max(pruned_seconds, 1e-12)
    return {
        "no_prune_seconds": no_prune_seconds,
        "pruned_seconds": pruned_seconds,
        "total_rows": int(total),
        "evaluated_rows": int(metadata["evaluated_rows"]),
        "pruned_rows": int(metadata["pruned_rows"]),
        "prune_rate": float(prune_rate),
        "speedup": speedup,
        "target": PRUNE_SPEEDUP_TARGET,
        "prune_rate_target": PRUNE_RATE_TARGET,
        "target_met": bool(speedup >= PRUNE_SPEEDUP_TARGET and prune_rate > PRUNE_RATE_TARGET),
        "note": "results are bit-identical; pruning only skips provably losing rows",
    }


def bench_prune_restricted(repeats: int = 5) -> dict:
    """Pruned vs exhaustive restricted brute force (the PR-5 acceptance case).

    n=12, m=16, k=4: C(16, 4) = 1820 subsets, the greedy-seeded incumbent
    plus the Lemma 3.2 subset bound prune ~3/4 of them before the exact
    ``E[max]`` kernel runs.
    """
    dataset, _ = gaussian_clusters(n=12, z=12, dimension=2, k_true=4, seed=9)
    candidates = dataset.all_locations()[:16]
    kwargs = dict(candidates=candidates, workers=1)
    unpruned = brute_force_restricted_assigned(dataset, 4, prune=False, **kwargs)
    pruned = brute_force_restricted_assigned(dataset, 4, **kwargs)
    no_prune_seconds = _best_of(
        lambda: brute_force_restricted_assigned(dataset, 4, prune=False, **kwargs), repeats
    )
    pruned_seconds = _best_of(
        lambda: brute_force_restricted_assigned(dataset, 4, **kwargs), repeats
    )
    return {
        "subsets": comb(candidates.shape[0], 4),
        **_prune_case_fields(pruned, unpruned, pruned_seconds, no_prune_seconds),
    }


def bench_prune_unassigned(repeats: int = 5) -> dict:
    """Pruned vs exhaustive unassigned brute force on the same shape.

    The unassigned bound min-reduces the pinned supports (``E[min]``, not
    ``min E``) so the pruned rows skip the rank-merge union sweep entirely.
    """
    dataset, _ = gaussian_clusters(n=12, z=12, dimension=2, k_true=4, seed=9)
    candidates = dataset.all_locations()[:16]
    kwargs = dict(candidates=candidates, workers=1)
    unpruned = brute_force_unassigned(dataset, 4, prune=False, **kwargs)
    pruned = brute_force_unassigned(dataset, 4, **kwargs)
    no_prune_seconds = _best_of(
        lambda: brute_force_unassigned(dataset, 4, prune=False, **kwargs), repeats
    )
    pruned_seconds = _best_of(lambda: brute_force_unassigned(dataset, 4, **kwargs), repeats)
    fields = _prune_case_fields(pruned, unpruned, pruned_seconds, no_prune_seconds)
    # The restricted case carries the >=3x acceptance target; here the rate
    # is the contract and wall clock is reported (the unassigned sweep's
    # bound is relatively more expensive than the expected-matrix gather).
    fields["target_met"] = bool(fields["prune_rate"] > PRUNE_RATE_TARGET)
    return {
        "subsets": comb(candidates.shape[0], 4),
        **fields,
    }


def bench_brute_force_parallel(repeats: int = 3, workers: int | None = None) -> dict:
    """Serial vs sharded brute-force enumeration on one mid-size instance."""
    dataset, _ = gaussian_clusters(n=30, z=4, dimension=2, k_true=3, seed=7)
    candidates = dataset.all_locations()[:40]
    kwargs = dict(candidates=candidates, chunk_rows=256)
    workers = max(2, int(workers) if workers is not None else 2)
    serial_fallback = available_workers() < 2

    serial = brute_force_restricted_assigned(dataset, 3, workers=1, **kwargs)
    serial_seconds = _best_of(
        lambda: brute_force_restricted_assigned(dataset, 3, workers=1, **kwargs), repeats
    )
    parallel = brute_force_restricted_assigned(dataset, 3, workers=workers, **kwargs)
    parallel_seconds = _best_of(
        lambda: brute_force_restricted_assigned(dataset, 3, workers=workers, **kwargs), repeats
    )
    assert parallel.expected_cost == serial.expected_cost  # determinism contract
    speedup = serial_seconds / max(parallel_seconds, 1e-12)
    return {
        "serial_seconds": serial_seconds,
        "parallel_seconds": parallel_seconds,
        "workers": workers,
        "cpu_count": available_workers(),
        "serial_fallback": serial_fallback,
        "subsets": comb(candidates.shape[0], 3),
        "speedup": speedup,
        "target": PARALLEL_SPEEDUP_TARGET,
        "target_met": bool(speedup >= PARALLEL_SPEEDUP_TARGET),
        "note": (
            "requested workers are clamped to available CPUs, so workers=N is "
            "never slower than serial; the >=2x target needs >=2 physical CPUs "
            "and results are bit-identical at every worker count"
        ),
    }


def _dispatch_payload() -> tuple:
    """The brute-force restricted payload the dispatch benchmarks ship."""
    dataset, _ = gaussian_clusters(n=30, z=4, dimension=2, k_true=3, seed=7)
    candidates = dataset.all_locations()[:40]
    context = CostContext(dataset, candidates)
    context.evaluator
    context.expected
    return (context, context.expected, 256)


def bench_shm_dispatch_bytes() -> dict:
    """Descriptor-dispatch bytes vs pickling the full payload per call."""
    payload = _dispatch_payload()
    # repro: noqa[SPILL-PATH] -- the bench measures the full-payload pickle size to report the descriptor-dispatch win; it never persists the bytes
    pickled_bytes = len(pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL))
    descriptor, call_lease = shm_module.publish_payload(payload)
    try:
        descriptor_bytes = descriptor.dispatch_bytes()
    finally:
        if call_lease is not None:
            call_lease.close()
        shm_module.close_all_publications()
    reduction = pickled_bytes / max(descriptor_bytes, 1)
    return {
        "pickled_payload_bytes": pickled_bytes,
        "shm_descriptor_bytes": descriptor_bytes,
        "reduction": reduction,
        "target": SHM_DISPATCH_BYTES_TARGET,
        "target_met": bool(reduction >= SHM_DISPATCH_BYTES_TARGET),
        "note": "per-chunk dispatch ships only the descriptor + work slice",
    }


def bench_best_first_gap_trajectory() -> dict:
    """Chunks to a 1% certified gap: best-first vs submission order.

    A deterministic *replay*, not a timed pool run: the chunk bounds, the
    per-chunk exact minima and the certified gap after each completed chunk
    are all pure functions of the instance, so the case measures exactly
    the scheduling win (how much sooner the ascending-bound order pushes
    the incumbent down and the outstanding bound up) with zero timing
    noise.  The gap fold is the same :func:`~repro.runtime.incumbent.
    certified_gap` the live GapTracker uses.  Target: best-first reaches
    the 1% gap in at most half the chunks submission order needs.
    """
    gap_target = 0.01
    dataset, _ = gaussian_clusters(n=10, z=6, dimension=2, k_true=3, seed=3)
    candidates = dataset.all_locations()[::3][:14]
    context = CostContext(dataset, candidates)
    subsets = np.array(list(combinations(range(candidates.shape[0]), 3)))
    chunk_rows = 16
    chunks = [subsets[start : start + chunk_rows] for start in range(0, len(subsets), chunk_rows)]
    bounds = [
        float(context.subset_two_level_lower_bounds(chunk, objective="unassigned").min())
        for chunk in chunks
    ]
    minima = [float(context.unassigned_costs(chunk).min()) for chunk in chunks]

    def chunks_to_gap(order: list[int]) -> int:
        incumbent = float("inf")
        for completed, index in enumerate(order, 1):
            incumbent = min(incumbent, minima[index])
            outstanding = min((bounds[i] for i in order[completed:]), default=float("inf"))
            if certified_gap(incumbent, outstanding) <= gap_target:
                return completed
        return len(order)

    submission = list(range(len(chunks)))
    best_first = sorted(submission, key=lambda index: (bounds[index], index))
    submission_chunks = chunks_to_gap(submission)
    best_first_chunks = chunks_to_gap(best_first)
    ratio = best_first_chunks / max(submission_chunks, 1)
    return {
        "gap_target": gap_target,
        "chunks_total": len(chunks),
        "submission_chunks_to_gap": submission_chunks,
        "best_first_chunks_to_gap": best_first_chunks,
        "chunk_ratio": ratio,
        "target": BEST_FIRST_CHUNK_RATIO_TARGET,
        "target_met": bool(ratio <= BEST_FIRST_CHUNK_RATIO_TARGET),
        "note": "deterministic replay of both orderings through the live gap fold",
    }


def bench_prune_rate_two_level(repeats: int = 3) -> dict:
    """Two-level (level-1 max pair) bound prune rate on n=12, m=16, k=4.

    The PR-10 acceptance case for the second-level subset bound: with the
    pair bound stacked on the Lemma 3.2 level-1 bound and best-first
    submission feeding the incumbent early, more than 80% of the 1820
    subset rows must be pruned before the exact ``E[max]`` kernel runs.
    Results stay bit-identical to ``prune=False`` (asserted here).
    """
    dataset, _ = gaussian_clusters(n=12, z=4, dimension=2, k_true=4, seed=1)
    candidates = dataset.all_locations()[:16]
    kwargs = dict(candidates=candidates, workers=1)
    unpruned = brute_force_restricted_assigned(dataset, 4, prune=False, **kwargs)
    pruned = brute_force_restricted_assigned(dataset, 4, **kwargs)
    assert pruned.expected_cost == unpruned.expected_cost  # exactness contract
    assert np.array_equal(pruned.centers, unpruned.centers)
    metadata = pruned.metadata
    total = int(metadata["total_rows"])
    prune_rate = metadata["pruned_rows"] / max(total, 1)
    pruned_seconds = _best_of(
        lambda: brute_force_restricted_assigned(dataset, 4, **kwargs), repeats
    )
    return {
        "subsets": comb(candidates.shape[0], 4),
        "total_rows": total,
        "evaluated_rows": int(metadata["evaluated_rows"]),
        "pruned_rows": int(metadata["pruned_rows"]),
        "prune_rate": float(prune_rate),
        "pruned_seconds": pruned_seconds,
        "target": TWO_LEVEL_PRUNE_RATE_TARGET,
        "target_met": bool(prune_rate > TWO_LEVEL_PRUNE_RATE_TARGET),
        "note": "two-level bound + best-first incumbent; bit-identical to prune=False",
    }


def bench_context_float32_bandwidth() -> dict:
    """Shared-memory segment bytes: float32 context layout vs exact float64.

    Publishes the same context under both layouts and compares total
    segment bytes.  The compact layout halves the support tables (the bulk
    of a publication at realistic ``z``) while keeping the expected matrix
    exact for argmin label selection, so the ratio lands near — but above —
    0.5; the target is <= 0.6.  Deterministic (sizes, not timings).
    """
    dataset, _ = gaussian_clusters(n=12, z=12, dimension=2, k_true=4, seed=9)
    candidates = dataset.all_locations()[:16]
    context = CostContext(dataset, candidates)
    context.supports  # materialize so both layouts publish the same parts

    def published_bytes(float32: bool) -> int:
        descriptor, call_lease = shm_module.publish_payload((context,), float32=float32)
        try:
            return sum(segment.nbytes for segment in descriptor.segments)
        finally:
            if call_lease is not None:
                call_lease.close()
            shm_module.close_all_publications()

    float64_bytes = published_bytes(False)
    float32_bytes = published_bytes(True)
    ratio = float32_bytes / max(float64_bytes, 1)
    return {
        "float64_segment_bytes": float64_bytes,
        "float32_segment_bytes": float32_bytes,
        "bytes_ratio": ratio,
        "target": FLOAT32_BYTES_RATIO_TARGET,
        "target_met": bool(ratio <= FLOAT32_BYTES_RATIO_TARGET),
        "note": "expected matrix stays float64 (exact argmin labels); supports halve",
    }


def bench_persistent_pool(calls: int = 20, repeats: int = 1) -> dict:
    """Fresh pool per call vs the persistent pool across many small calls.

    The workload is ``calls`` small brute-force enumerations over one
    store-memoized context, each sharded at 2 workers with small chunks.
    The fresh-pool leg runs with ``shm=False`` (the payload bytes ship with
    the dispatch, as pre-shared-memory code did) and shuts the pool down
    between calls, so every call pays worker startup plus payload transfer;
    the persistent leg reuses pool, shared-memory publication and
    worker-side attachment across all calls.  Oversubscription is enabled
    so the comparison exercises real pools even on 1-CPU boxes — startup
    amortization, which is what this measures, does not need parallelism.
    """
    dataset, _ = gaussian_clusters(n=12, z=4, dimension=2, k_true=3, seed=5)
    candidates = dataset.all_locations()[:16]
    store = ContextStore()
    kwargs = dict(candidates=candidates, chunk_rows=32, workers=2, store=store)
    previous = set_oversubscribe(True)
    try:
        serial_reference = brute_force_restricted_assigned(
            dataset, 3, candidates=candidates, chunk_rows=32, workers=1, store=store
        )

        def fresh_pool_calls() -> None:
            for _ in range(calls):
                pool_module.shutdown()
                result = brute_force_restricted_assigned(dataset, 3, shm=False, **kwargs)
                assert result.expected_cost == serial_reference.expected_cost
            pool_module.shutdown()

        def persistent_calls() -> None:
            for _ in range(calls):
                result = brute_force_restricted_assigned(dataset, 3, **kwargs)
                assert result.expected_cost == serial_reference.expected_cost

        fresh_seconds = _best_of(fresh_pool_calls, repeats)
        pool_module.shutdown()
        brute_force_restricted_assigned(dataset, 3, **kwargs)  # warm pool + publication
        persistent_seconds = _best_of(persistent_calls, repeats)
    finally:
        set_oversubscribe(previous)
        pool_module.shutdown()
    speedup = fresh_seconds / max(persistent_seconds, 1e-12)
    return {
        "calls": calls,
        "per_call_pool_seconds": fresh_seconds,
        "persistent_pool_seconds": persistent_seconds,
        "speedup": speedup,
        "target": POOL_AMORTIZATION_TARGET,
        "target_met": bool(speedup >= POOL_AMORTIZATION_TARGET),
        "note": "both legs produce the serial result bit-identically",
    }


_SPILL_SNIPPET = """
import sys, time
from repro.runtime.store import ContextStore
from repro.workloads.synthetic import gaussian_clusters

dataset, _ = gaussian_clusters(n=60, z=6, dimension=2, k_true=4, seed=31)
candidates = dataset.all_locations()[:48]
store = ContextStore(spill_dir=sys.argv[1])
start = time.perf_counter()
context = store.get(dataset, candidates)
context.evaluator
elapsed = time.perf_counter() - start
print(f"{store.misses} {store.disk_hits} {elapsed:.6f}")
"""


def bench_context_store_disk_spill() -> dict:
    """Two separate processes share one context build via the disk tier."""
    with tempfile.TemporaryDirectory(prefix="repro-spill-") as spill_dir:
        runs = []
        for _ in range(2):
            # repro: noqa[ENV-REGISTRY] -- whole-environment copy for a subprocess, not a read of any one repro variable
            env = dict(os.environ)
            src_root = str(Path(__file__).resolve().parents[2])
            env["PYTHONPATH"] = src_root + os.pathsep + env.get("PYTHONPATH", "")
            output = subprocess.run(
                [sys.executable, "-c", _SPILL_SNIPPET, spill_dir],
                capture_output=True,
                text=True,
                check=True,
                env=env,
            )
            misses, disk_hits, seconds = output.stdout.split()
            runs.append((int(misses), int(disk_hits), float(seconds)))
    (first_misses, first_disk, first_seconds), (second_misses, second_disk, second_seconds) = runs
    return {
        "first_process": {"misses": first_misses, "disk_hits": first_disk, "seconds": first_seconds},
        "second_process": {
            "misses": second_misses,
            "disk_hits": second_disk,
            "seconds": second_seconds,
        },
        "cross_process_hit": bool(second_disk == 1 and second_misses == 0),
        "target_met": bool(second_disk == 1 and second_misses == 0),
        "note": "the second CLI invocation loads the first one's spilled build",
    }


def bench_rank_merge(repeats: int = 3) -> dict:
    """Rank-merge unassigned sweep vs the historical per-row float sort."""
    from itertools import combinations

    dataset, _ = gaussian_clusters(n=40, z=6, dimension=2, k_true=3, seed=7)
    candidates = dataset.all_locations()[:40]
    context = CostContext(dataset, candidates)
    subset_rows = np.asarray(list(combinations(range(40), 3)))
    merged = context.unassigned_costs(subset_rows)
    float_sorted = context._unassigned_costs_float_sort(subset_rows)
    assert np.array_equal(merged, float_sorted)  # bit-identical by construction
    merge_seconds = _best_of(lambda: context.unassigned_costs(subset_rows), repeats)
    float_seconds = _best_of(
        lambda: context._unassigned_costs_float_sort(subset_rows), repeats
    )
    speedup = float_seconds / max(merge_seconds, 1e-12)
    return {
        "float_sort_seconds": float_seconds,
        "rank_merge_seconds": merge_seconds,
        "subsets": int(subset_rows.shape[0]),
        "speedup": speedup,
        "target": RANK_MERGE_SPEEDUP_TARGET,
        "target_met": bool(speedup >= RANK_MERGE_SPEEDUP_TARGET),
        "note": "costs are bit-identical between the two sweeps",
    }


def bench_column_splice(repeats: int = 5) -> dict:
    """Full context rebuild vs incremental fine-grid column splice."""
    dataset, _ = line_workload(n=100, z=12, segment_count=3, seed=11)
    k = 3
    coarse = np.linspace(-1.0, 1.0, 33)
    fine = np.linspace(-0.05, 0.05, 21)
    centers = dataset.expected_points()[:k]
    candidates = np.vstack([centers, coarse.reshape(-1, 1), fine.reshape(-1, 1)])
    fine_columns = np.arange(k + 33, k + 33 + 21)

    def rebuild() -> None:
        context = CostContext(dataset, candidates)
        context.evaluator  # the per-sweep cost the splice avoids

    context = CostContext(dataset, candidates)
    context.evaluator
    shift = [0.0]

    def splice() -> None:
        shift[0] += 1e-4
        context.replace_candidate_columns(fine_columns, (fine + shift[0]).reshape(-1, 1))

    rebuild_seconds = _best_of(rebuild, repeats)
    splice_seconds = _best_of(splice, repeats)
    speedup = rebuild_seconds / max(splice_seconds, 1e-12)
    return {
        "rebuild_seconds": rebuild_seconds,
        "splice_seconds": splice_seconds,
        "replaced_columns": int(fine_columns.shape[0]),
        "total_columns": int(candidates.shape[0]),
        "speedup": speedup,
        "target": SPLICE_SPEEDUP_TARGET,
        "target_met": bool(speedup >= SPLICE_SPEEDUP_TARGET),
    }


def bench_batch_cost_kernel(repeats: int = 3) -> dict:
    """Batched E[max] kernel vs a scalar per-assignment loop (PR-1 guard)."""
    dataset, _ = gaussian_clusters(n=100, z=6, dimension=2, k_true=4, seed=12)
    centers = dataset.expected_points()[:4]
    evaluator = assigned_cost_evaluator(dataset, centers)
    rng = np.random.default_rng(0)
    column_sets = rng.integers(0, 4, size=(128, dataset.size))
    batch_seconds = _best_of(lambda: evaluator.costs(column_sets), repeats)
    scalar_seconds = _best_of(lambda: [evaluator.cost(row) for row in column_sets], repeats)
    return {
        "batch_seconds": batch_seconds,
        "scalar_seconds": scalar_seconds,
        "rows": 128,
        "speedup": scalar_seconds / max(batch_seconds, 1e-12),
    }


def bench_local_search_sweep(repeats: int = 3) -> dict:
    """Round-amortized rest profiles vs per-point re-sorts (PR-2 guard)."""
    dataset, _ = gaussian_clusters(n=200, z=8, dimension=2, k_true=4, seed=3)
    centers = dataset.expected_points()[:4]
    evaluator = assigned_cost_evaluator(dataset, centers)
    rng = np.random.default_rng(0)
    assignment = rng.integers(0, centers.shape[0], size=dataset.size)
    all_columns = np.arange(centers.shape[0])

    def per_point_round() -> None:
        for point in range(dataset.size):
            profile = evaluator.rest_profile(assignment, point)
            evaluator.move_costs(profile, all_columns)

    sweep = evaluator.local_search_sweep(assignment)

    def amortized_round() -> None:
        for point in range(dataset.size):
            profile = sweep.rest_profile(point)
            evaluator.move_costs(profile, all_columns)

    per_point_seconds = _best_of(per_point_round, repeats)
    amortized_seconds = _best_of(amortized_round, repeats)
    return {
        "per_point_seconds": per_point_seconds,
        "amortized_seconds": amortized_seconds,
        "speedup": per_point_seconds / max(amortized_seconds, 1e-12),
    }


def bench_context_store(repeats: int = 3) -> dict:
    """Cold CostContext build vs a ContextStore hit on the same pair."""
    dataset, _ = gaussian_clusters(n=80, z=6, dimension=2, k_true=4, seed=21)
    candidates = dataset.all_locations()[:64]

    def cold() -> None:
        CostContext(dataset, candidates).evaluator

    store = ContextStore()
    store.get(dataset, candidates).evaluator

    def hit() -> None:
        store.get(dataset, candidates)

    cold_seconds = _best_of(cold, repeats)
    hit_seconds = _best_of(hit, repeats)
    return {
        "cold_build_seconds": cold_seconds,
        "memoized_hit_seconds": hit_seconds,
        "speedup": cold_seconds / max(hit_seconds, 1e-12),
        "hits": store.hits,
        "misses": store.misses,
    }


#: Wall-clock overhead bound for crash recovery (faulted / fault-free).
FAULT_RECOVERY_OVERHEAD_TARGET = 2.0
#: Fault spec the recovery bench arms: every ~10th chunk dispatch kills its
#: worker (deterministic draws — see :mod:`repro.faults`).
FAULT_RECOVERY_SPEC = "crash:p=0.1:seed=10"


def bench_fault_recovery(repeats: int = 1) -> dict:
    """Crash-injected vs fault-free brute force (PR 8): identical results.

    Runs the PR-5 acceptance instance (n=12, m=16, k=4; 29 shared-memory
    chunk dispatches at ``chunk_rows=64``) twice from a cold pool: once
    clean, once with :data:`FAULT_RECOVERY_SPEC` armed so worker processes
    deterministically die mid-map.  The recovery contract under test:

    * costs, centers and assignment are **bit-identical** to the fault-free
      run (chunk-granular recovery preserves submission-order reduction and
      incumbent-token determinism);
    * completed chunks are never recomputed — audited via the health-counter
      identity ``chunks_submitted == chunks_completed + retries`` (every
      pool submission either completes exactly once or is requeued and
      counted as a retry; the old behavior, a full serial re-run, breaks
      the identity because completed chunks get re-executed);
    * recovery overhead stays under
      :data:`FAULT_RECOVERY_OVERHEAD_TARGET` x the fault-free wall clock.

    Both legs pay pool startup (cold pool each run) so the comparison is
    spawn-fair; oversubscription is enabled so 1-CPU boxes still exercise a
    real 2-worker pool.
    """
    from .. import faults
    from . import health

    dataset, _ = gaussian_clusters(n=12, z=12, dimension=2, k_true=4, seed=9)
    candidates = dataset.all_locations()[:16]
    kwargs = dict(candidates=candidates, chunk_rows=64, workers=2, prune=False)
    previous_oversubscribe = set_oversubscribe(True)
    previous_spec = faults.enabled_spec()
    try:

        def cold_run():
            pool_module.shutdown()
            return brute_force_restricted_assigned(dataset, 4, **kwargs)

        fault_free = cold_run()
        fault_free_seconds = _best_of(cold_run, repeats)

        faults.set_enabled(FAULT_RECOVERY_SPEC)
        before = health.snapshot()
        faulted = cold_run()
        recovery = health.delta(before)
        faulted_seconds = _best_of(cold_run, repeats)
    finally:
        faults.set_enabled(previous_spec or None)
        set_oversubscribe(previous_oversubscribe)
        pool_module.shutdown()

    assert faulted.expected_cost == fault_free.expected_cost  # recovery contract
    assert np.array_equal(faulted.centers, fault_free.centers)
    assert np.array_equal(faulted.assignment, fault_free.assignment)
    counters = recovery.as_dict()
    chunk_audit_ok = bool(
        recovery.chunks_submitted == recovery.chunks_completed + recovery.retries
    )
    overhead = faulted_seconds / max(fault_free_seconds, 1e-12)
    return {
        "fault_spec": FAULT_RECOVERY_SPEC,
        "fault_free_seconds": fault_free_seconds,
        "faulted_seconds": faulted_seconds,
        "recovery_overhead": overhead,
        "bit_identical": True,  # asserted above; a mismatch raises
        "chunk_audit_ok": chunk_audit_ok,
        **{f"health_{key}": value for key, value in counters.items()},
        "target": FAULT_RECOVERY_OVERHEAD_TARGET,
        "target_met": bool(
            chunk_audit_ok
            and recovery.pool_rebuilds >= 1
            and overhead < FAULT_RECOVERY_OVERHEAD_TARGET
        ),
        "note": (
            "crash-injected run is bit-identical to fault-free; completed "
            "chunks are never resubmitted (submitted == completed + retries)"
        ),
    }


#: Concurrent first-touch requests the single-flight leg fires.
SERVE_SINGLE_FLIGHT_CLIENTS = 8

#: Sequential requests the latency legs time per endpoint.
SERVE_LATENCY_REQUESTS = 25


def bench_serve_latency(repeats: int = 1) -> dict:
    """End-to-end ``repro serve`` latency over a real socket (PR 9).

    Three legs against one in-process server on an ephemeral port:

    * **single-flight** — :data:`SERVE_SINGLE_FLIGHT_CLIENTS` concurrent
      first-touch solves of the same instance; the contract under test is
      that the shared context is built exactly **once** (the followers wait
      on the builder instead of duplicating the build) and every client
      gets the bit-identical cost;
    * **solve latency** — :data:`SERVE_LATENCY_REQUESTS` sequential warm
      solves; reports the server-observed p50/p95 service time and the
      client-observed requests/second (socket + JSON overhead included);
    * **score latency** — the same for the cheap ``/v1/score`` path, which
      bounds the HTTP floor of the stack.

    Admission is sized so nothing is rejected (``max_inflight`` covers the
    concurrent leg); a 429 here would mean the gate, not the solver, was
    measured.
    """
    from concurrent.futures import ThreadPoolExecutor

    from ..serve import ReproServer, ServeClient, ServeConfig

    dataset, _ = gaussian_clusters(n=8, z=3, dimension=2, k_true=2, seed=11)
    config = ServeConfig(port=0, max_inflight=SERVE_SINGLE_FLIGHT_CLIENTS, workers=1)
    server = ReproServer(config)
    server.start()
    try:
        def first_touch(index: int) -> float:
            client = ServeClient(server.url, max_retries=2, seed=index)
            return float(client.solve(dataset, 2)["expected_cost"])

        with ThreadPoolExecutor(max_workers=SERVE_SINGLE_FLIGHT_CLIENTS) as executor:
            costs = list(executor.map(first_touch, range(SERVE_SINGLE_FLIGHT_CLIENTS)))
        context_builds = server.state.contexts.builds
        single_flight_ok = context_builds == 1 and len(set(costs)) == 1

        client = ServeClient(server.url, max_retries=2)
        centers = client.solve(dataset, 2)["centers"]

        def timed_leg(request: Callable[[], object]) -> float:
            started = time.perf_counter()
            for _ in range(SERVE_LATENCY_REQUESTS):
                request()
            return time.perf_counter() - started

        solve_seconds = min(
            timed_leg(lambda: client.solve(dataset, 2)) for _ in range(repeats)
        )
        score_seconds = min(
            timed_leg(lambda: client.score(dataset, centers)) for _ in range(repeats)
        )
        stats = server.state.latency
        solve_window = stats["/v1/solve"].as_dict()
        score_window = stats["/v1/score"].as_dict()
    finally:
        server.stop()
    return {
        "single_flight_clients": SERVE_SINGLE_FLIGHT_CLIENTS,
        "single_flight_context_builds": context_builds,
        "single_flight_ok": bool(single_flight_ok),
        "bit_identical_costs": len(set(costs)) == 1,
        "solve_latency_seconds": solve_seconds,
        "solve_requests_per_second": SERVE_LATENCY_REQUESTS / max(solve_seconds, 1e-12),
        "solve_p50_ms": solve_window["p50_ms"],
        "solve_p95_ms": solve_window["p95_ms"],
        "score_latency_seconds": score_seconds,
        "score_requests_per_second": SERVE_LATENCY_REQUESTS / max(score_seconds, 1e-12),
        "score_p50_ms": score_window["p50_ms"],
        "score_p95_ms": score_window["p95_ms"],
        "requests": solve_window["count"] + score_window["count"],
        "errors": solve_window["errors"] + score_window["errors"],
        "rejected": solve_window["rejected"] + score_window["rejected"],
        "target_met": bool(single_flight_ok and solve_window["errors"] == 0),
        "note": (
            "one context build for N concurrent first-touch solves "
            "(single-flight); p50/p95 are server-observed service times, "
            "req/s is client-observed over a real socket"
        ),
    }


def bench_lint_full_tree(repeats: int = 3) -> dict:
    """``repro lint`` wall-clock over the whole ``src/repro`` tree (PR 6).

    The lint job gates CI ahead of tier-1, so its latency is part of every
    push's critical path; tracking it here keeps rule authors honest about
    quadratic visitors.  The tree must also lint clean — a nonzero finding
    count in the checked-in document would mean the self-check regressed.
    """
    from ..analysis import all_rules, lint_paths

    tree = Path(__file__).resolve().parents[1]
    report = lint_paths([tree], dataflow=False)

    def lint_tree() -> None:
        lint_paths([tree], dataflow=False)

    seconds = _best_of(lint_tree, repeats)
    return {
        "lint_full_tree_seconds": seconds,
        "files_checked": report.files,
        "rules": len(all_rules()),
        "findings": len(report.findings),
        "suppressed": len(report.suppressed),
    }


def bench_lint_dataflow_full_tree(repeats: int = 3) -> dict:
    """Whole-program (dataflow) lint over ``src/repro`` (PR 7).

    The default lint mode now parses the tree into a project symbol table
    and runs the interprocedural rules on top of the per-module pass; this
    case tracks the *full* pipeline so the dataflow overhead stays visible
    next to ``lint_full_tree``'s intra-module-only timing.  The tree must
    lint clean here too — the acceptance self-check includes the dataflow
    rules.
    """
    from ..analysis import dataflow_rules, lint_paths

    tree = Path(__file__).resolve().parents[1]
    report = lint_paths([tree], dataflow=True)

    def lint_tree() -> None:
        lint_paths([tree], dataflow=True)

    seconds = _best_of(lint_tree, repeats)
    return {
        "lint_dataflow_full_tree_seconds": seconds,
        "files_checked": report.files,
        "dataflow_rules": len(dataflow_rules()),
        "findings": len(report.findings),
        "suppressed": len(report.suppressed),
    }


CASES: dict[str, Callable[[], dict]] = {
    "brute_force_prune_restricted": bench_prune_restricted,
    "brute_force_prune_unassigned": bench_prune_unassigned,
    "brute_force_parallel_speedup": bench_brute_force_parallel,
    "best_first_gap_trajectory": bench_best_first_gap_trajectory,
    "prune_rate_two_level": bench_prune_rate_two_level,
    "context_float32_bandwidth": bench_context_float32_bandwidth,
    "shm_dispatch_bytes": bench_shm_dispatch_bytes,
    "persistent_pool_amortization": bench_persistent_pool,
    "context_store_disk_spill": bench_context_store_disk_spill,
    "unassigned_rank_merge": bench_rank_merge,
    "wang_zhang_column_splice": bench_column_splice,
    "batch_cost_kernel": bench_batch_cost_kernel,
    "local_search_sweep": bench_local_search_sweep,
    "context_store_memoization": bench_context_store,
    "fault_recovery": bench_fault_recovery,
    "serve_latency": bench_serve_latency,
    "lint_full_tree": bench_lint_full_tree,
    "lint_dataflow_full_tree": bench_lint_dataflow_full_tree,
}

#: The fast smoke subset ``--quick`` runs (CI's bench step): everything that
#: completes in milliseconds, skipping the subprocess-spawning and
#: many-call amortization cases.
QUICK_CASES: tuple[str, ...] = (
    "brute_force_prune_restricted",
    "brute_force_prune_unassigned",
    "best_first_gap_trajectory",
    "prune_rate_two_level",
    "context_float32_bandwidth",
    "shm_dispatch_bytes",
    "unassigned_rank_merge",
    "wang_zhang_column_splice",
    "batch_cost_kernel",
    "context_store_memoization",
    "serve_latency",
    "lint_full_tree",
    "lint_dataflow_full_tree",
)


def _git_state() -> tuple[str | None, bool | None]:
    """``(HEAD revision, dirty?)`` of the repo the bench ran in.

    A dirty worktree means the numbers were produced by code *on top of* the
    recorded revision (the usual state when benching right before a commit);
    recording the flag keeps the cross-PR trajectory auditable either way.
    """
    root = Path(__file__).resolve().parents[3]
    try:
        revision = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True,
            text=True,
            cwd=root,
            timeout=10,
        )
        status = subprocess.run(
            ["git", "status", "--porcelain"],
            capture_output=True,
            text=True,
            cwd=root,
            timeout=10,
        )
    except (OSError, subprocess.TimeoutExpired):  # pragma: no cover - no git
        return None, None
    if revision.returncode != 0:
        return None, None
    dirty = bool(status.stdout.strip()) if status.returncode == 0 else None
    return revision.stdout.strip(), dirty


def run_bench(
    output: str | Path | None = DEFAULT_OUTPUT,
    *,
    cases: list[str] | None = None,
    quick: bool = False,
) -> dict:
    """Execute the benchmark cases and (optionally) write the JSON document.

    ``quick`` selects the :data:`QUICK_CASES` smoke subset (explicit
    ``cases`` still win); the document records which preset produced it.
    """
    selected = cases or (list(QUICK_CASES) if quick else list(CASES))
    unknown = [name for name in selected if name not in CASES]
    if unknown:
        raise ValueError(f"unknown benchmark cases: {unknown}; known: {sorted(CASES)}")
    now = time.time()
    revision, dirty = _git_state()
    document = {
        "schema": "repro-bench/1",
        "pr": "PR10",
        "quick": bool(quick and not cases),
        "created_unix": now,
        "created_iso": datetime.datetime.fromtimestamp(
            now, tz=datetime.timezone.utc
        ).isoformat(timespec="seconds"),
        "git_revision": revision,
        "git_dirty": dirty,
        "environment": {
            "python": sys.version.split()[0],
            "numpy": np.__version__,
            "platform": platform.platform(),
            "cpu_count": os.cpu_count(),
        },
        "cases": {},
    }
    for name in selected:
        document["cases"][name] = CASES[name]()
    if output is not None:
        Path(output).write_text(json.dumps(document, indent=2) + "\n")
    return document


def compare_documents(new_document: dict, old_document: dict) -> tuple[str, list[str]]:
    """Per-case speedup delta table between two benchmark documents.

    Every ``*_seconds`` key shared by a case in both documents gets a line;
    a metric counts as a regression when the new timing exceeds the case's
    tolerance (:func:`compare_spec` — :data:`REGRESSION_TOLERANCE` unless
    the case is registered in :data:`CASE_COMPARE`), the old timing is above
    the case's noise floor, and the metric is a product path rather than one
    of the :data:`REFERENCE_METRICS` baselines.  Cases (or metrics) present in only
    one document are *reported*, never errors: a PR adding new cases, a
    ``--quick`` run covering a subset, or a retired case are all normal
    states of the trajectory.  Returns the rendered table and the list of
    regression descriptions.
    """
    lines = [
        f"{'case/metric':<58}{'old (s)':>12}{'new (s)':>12}{'new/old':>9}",
        "-" * 91,
    ]
    regressions: list[str] = []
    old_cases = old_document.get("cases", {})
    new_cases = new_document.get("cases", {})
    for case_name in sorted(set(old_cases) & set(new_cases)):
        old_case, new_case = old_cases[case_name], new_cases[case_name]
        if not isinstance(old_case, dict) or not isinstance(new_case, dict):
            continue
        spec = compare_spec(case_name)
        for key in sorted(set(old_case) & set(new_case)):
            if not key.endswith("_seconds"):
                continue
            old_value, new_value = old_case[key], new_case[key]
            if not isinstance(old_value, (int, float)) or not isinstance(new_value, (int, float)):
                continue
            ratio = new_value / max(old_value, 1e-12)
            flag = ""
            if (
                key not in REFERENCE_METRICS
                and old_value >= spec.floor_seconds
                and ratio > spec.tolerance
            ):
                flag = "  << REGRESSION"
                regressions.append(
                    f"{case_name}.{key}: {old_value:.4f}s -> {new_value:.4f}s ({ratio:.2f}x)"
                )
            lines.append(
                f"{case_name + '.' + key:<58}{old_value:>12.5f}{new_value:>12.5f}{ratio:>9.2f}{flag}"
            )
    if len(lines) == 2:
        lines.append("(no comparable *_seconds metrics)")
    only_old = sorted(set(old_cases) - set(new_cases))
    only_new = sorted(set(new_cases) - set(old_cases))
    if only_old:
        lines.append(f"only in baseline (not re-run): {', '.join(only_old)}")
    if only_new:
        lines.append(f"only in this run (no baseline): {', '.join(only_new)}")
    return "\n".join(lines), regressions


#: Exit code :func:`report_comparison` uses for ">20% regression" — distinct
#: from crashes/unreadable baselines (1) so CI can warn on the former while
#: gating on the latter.
REGRESSION_EXIT_CODE = 3


def report_comparison(document: dict, baseline_path: "str | Path") -> int:
    """Print the delta table against a baseline document.

    Returns 0 when clean, :data:`REGRESSION_EXIT_CODE` (3) when shared
    metrics regressed beyond 20%, and 1 when the baseline cannot be read —
    the single implementation behind both ``python -m repro bench
    --compare`` and ``benchmarks/run_bench.py --compare`` (an unreadable or
    malformed baseline is reported as a failure rather than a traceback).
    """
    baseline_path = Path(baseline_path)
    try:
        baseline = json.loads(baseline_path.read_text())
    except (OSError, json.JSONDecodeError) as error:
        print(f"cannot read baseline {baseline_path}: {error}", file=sys.stderr)
        return 1
    table, regressions = compare_documents(document, baseline)
    print(f"\nspeedup deltas vs {baseline_path}:")
    print(table)
    if regressions:
        print(f"\n{len(regressions)} regression(s) beyond 20%:", file=sys.stderr)
        for regression in regressions:
            print(f"  {regression}", file=sys.stderr)
        return REGRESSION_EXIT_CODE
    return 0
