"""Smallest enclosing ball (minimum enclosing ball, 1-center) in R^d.

The Euclidean 1-center of a point set is the center of its smallest enclosing
ball.  The paper uses 1-centers both as the ``k = 1`` special case
(Theorem 2.1) and — for general metric spaces — as the per-point
representative ``P̃_i`` (Theorems 2.6/2.7; there the *discrete* metric
1-center is used instead, see :mod:`repro.deterministic.one_center`).

Solvers provided:

* :func:`welzl_ball` — exact expected-linear-time randomized Welzl recursion,
  suitable for low dimension (d <= :data:`WELZL_MAX_DIMENSION`);
* :func:`ritter_ball` — fast constant-factor approximation used as a seed;
* :func:`smallest_enclosing_ball` — public entry point: Welzl in low
  dimension, projected-subgradient refinement of the convex max-distance
  objective otherwise;
* :func:`weighted_one_center` — minimise ``max_i w_i ||x - p_i||``.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from .._validation import as_point_array, as_rng
from ..exceptions import ConvergenceError, ValidationError

#: Dimension threshold above which the exact Welzl recursion is replaced by
#: the numerical solver (the boundary solve becomes ill-conditioned and the
#: expected running time degrades with dimension).
WELZL_MAX_DIMENSION = 12


@dataclass(frozen=True)
class Ball:
    """A closed ball ``{x : ||x - center|| <= radius}``."""

    center: np.ndarray
    radius: float

    def contains(self, point: np.ndarray, *, atol: float = 1e-7) -> bool:
        """Whether ``point`` lies in the (slightly inflated) ball."""
        gap = float(np.linalg.norm(np.asarray(point, dtype=float) - self.center))
        return gap <= self.radius + atol * max(1.0, self.radius)

    def contains_all(self, points: np.ndarray, *, atol: float = 1e-7) -> bool:
        """Whether every row of ``points`` lies in the (inflated) ball."""
        points = as_point_array(points)
        distances = np.linalg.norm(points - self.center[None, :], axis=1)
        return bool(np.all(distances <= self.radius + atol * max(1.0, self.radius)))


def _ball_from_boundary(boundary: list[np.ndarray], dim: int) -> Ball:
    """Smallest ball with every point of ``boundary`` on its boundary.

    Works for 0 to ``d + 1`` affinely independent points: the center is the
    point of the boundary points' affine hull equidistant from all of them.
    """
    if not boundary:
        return Ball(center=np.zeros(dim), radius=0.0)
    points = np.asarray(boundary, dtype=float)
    base = points[0]
    if points.shape[0] == 1:
        return Ball(center=base.copy(), radius=0.0)
    rows = points[1:] - base
    rhs = 0.5 * (rows * rows).sum(axis=1)
    # Least-squares solution keeps the center in the affine hull of the
    # boundary points even when they are affinely dependent.
    solution, *_ = np.linalg.lstsq(rows, rhs, rcond=None)
    center = base + solution
    radius = float(np.linalg.norm(points - center, axis=1).max())
    return Ball(center=center, radius=radius)


def welzl_ball(points: np.ndarray, *, seed: int | np.random.Generator | None = 0) -> Ball:
    """Exact smallest enclosing ball via Welzl's randomized recursion."""
    points = as_point_array(points)
    n, dim = points.shape
    if n == 1:
        return Ball(center=points[0].copy(), radius=0.0)
    rng = as_rng(seed)
    order = rng.permutation(n)
    shuffled = points[order]

    def recurse(count: int, boundary: list[np.ndarray]) -> Ball:
        if count == 0 or len(boundary) == dim + 1:
            return _ball_from_boundary(boundary, dim)
        point = shuffled[count - 1]
        ball = recurse(count - 1, boundary)
        if ball.contains(point, atol=1e-10):
            return ball
        return recurse(count - 1, boundary + [point])

    old_limit = sys.getrecursionlimit()
    sys.setrecursionlimit(max(old_limit, 4 * n + 1000))
    try:
        ball = recurse(n, [])
    finally:
        sys.setrecursionlimit(old_limit)

    # Report the radius actually needed to cover every input point so the
    # returned ball is always feasible even under floating-point error.
    radius = float(np.linalg.norm(points - ball.center[None, :], axis=1).max())
    result = Ball(center=ball.center, radius=radius)
    return result


def ritter_ball(points: np.ndarray) -> Ball:
    """Ritter's fast approximate bounding ball (used as a seed)."""
    points = as_point_array(points)
    first = points[0]
    far_a = points[int(np.argmax(np.linalg.norm(points - first, axis=1)))]
    far_b = points[int(np.argmax(np.linalg.norm(points - far_a, axis=1)))]
    center = (far_a + far_b) / 2.0
    radius = float(np.linalg.norm(far_a - far_b)) / 2.0
    for point in points:
        gap = float(np.linalg.norm(point - center))
        if gap > radius:
            shift = (gap - radius) / 2.0
            radius += shift
            center = center + (point - center) * (shift / gap)
    return Ball(center=center, radius=float(np.linalg.norm(points - center, axis=1).max()))


def _numerical_ball(
    points: np.ndarray,
    weights: np.ndarray | None = None,
    *,
    max_iterations: int = 20_000,
    tolerance: float = 1e-9,
) -> Ball:
    """Projected-subgradient minimisation of the (weighted) max distance.

    The objective ``f(x) = max_i w_i ||x - p_i||`` is convex; a diminishing
    step-size subgradient method seeded with Ritter's ball converges to the
    optimum.  Works in any dimension and handles the weighted case.
    """
    points = as_point_array(points)
    n = points.shape[0]
    if n == 1:
        return Ball(center=points[0].copy(), radius=0.0)
    if weights is None:
        weights = np.ones(n)
    center = ritter_ball(points).center
    span = float(np.linalg.norm(points - center[None, :], axis=1).max())
    best_center = center.copy()
    best_value = float((weights * np.linalg.norm(points - center[None, :], axis=1)).max())
    step0 = max(span, 1e-12)
    for iteration in range(1, max_iterations + 1):
        distances = np.linalg.norm(points - center[None, :], axis=1)
        values = weights * distances
        worst = int(np.argmax(values))
        value = float(values[worst])
        if value < best_value:
            best_value = value
            best_center = center.copy()
        gap = float(distances[worst])
        if gap <= tolerance:
            break
        gradient = weights[worst] * (center - points[worst]) / gap
        step = step0 / np.sqrt(iteration)
        center = center - step * gradient
    unweighted_radius = float(np.linalg.norm(points - best_center[None, :], axis=1).max())
    return Ball(center=best_center, radius=unweighted_radius)


def smallest_enclosing_ball(
    points: Sequence[Sequence[float]] | np.ndarray,
    *,
    seed: int | np.random.Generator | None = 0,
) -> Ball:
    """Return the smallest enclosing ball of ``points``.

    Exact (Welzl) in dimension up to :data:`WELZL_MAX_DIMENSION`, numerical
    convex optimisation above that.
    """
    points = as_point_array(points)
    if points.shape[0] == 1:
        return Ball(center=points[0].copy(), radius=0.0)
    if points.shape[1] <= WELZL_MAX_DIMENSION:
        return welzl_ball(points, seed=seed)
    return _numerical_ball(points)


def weighted_one_center(
    points: Sequence[Sequence[float]] | np.ndarray,
    weights: Sequence[float] | np.ndarray,
    *,
    max_iterations: int = 20_000,
    tolerance: float = 1e-9,
) -> Ball:
    """Euclidean weighted 1-center: minimise ``max_i w_i ||x - p_i||``.

    The returned :class:`Ball` carries the optimal center; its radius is the
    *unweighted* max distance from that center, so the ball still encloses
    every input point.
    """
    points = as_point_array(points)
    weights = np.asarray(weights, dtype=float).reshape(-1)
    if weights.shape[0] != points.shape[0]:
        raise ValidationError("weights must have one entry per point")
    if np.any(weights < 0) or not np.all(np.isfinite(weights)):
        raise ValidationError("weights must be finite and non-negative")
    if np.all(weights == 0):
        raise ValidationError("at least one weight must be positive")
    ball = _numerical_ball(points, weights, max_iterations=max_iterations, tolerance=tolerance)
    if not np.all(np.isfinite(ball.center)):
        raise ConvergenceError("weighted 1-center failed to converge")
    return ball
