"""Computational-geometry substrate: enclosing balls, medians, helpers."""

from .helpers import (
    bounding_box,
    bounding_box_diagonal,
    centroid,
    exact_diameter,
    farthest_point_index,
    unique_points,
)
from .median import geometric_median, median_objective
from .seb import (
    WELZL_MAX_DIMENSION,
    Ball,
    ritter_ball,
    smallest_enclosing_ball,
    weighted_one_center,
    welzl_ball,
)

__all__ = [
    "Ball",
    "smallest_enclosing_ball",
    "welzl_ball",
    "ritter_ball",
    "weighted_one_center",
    "WELZL_MAX_DIMENSION",
    "geometric_median",
    "median_objective",
    "bounding_box",
    "bounding_box_diagonal",
    "exact_diameter",
    "centroid",
    "farthest_point_index",
    "unique_points",
]
