"""Weighted geometric median (Fermat–Weber point) via Weiszfeld iteration.

The paper's conclusion lists the k-median problem for uncertain data as the
intended follow-up ("In a future work, we intend to use our approach to study
the k-median and the k-mean problems").  The same expected-point reduction
applies verbatim once a deterministic (weighted) 1-median routine exists, so
we provide it here as an extension of the reproduction (used by
``repro.algorithms.extensions``).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from .._validation import as_point_array
from ..exceptions import ConvergenceError, ValidationError


def geometric_median(
    points: Sequence[Sequence[float]] | np.ndarray,
    weights: Sequence[float] | np.ndarray | None = None,
    *,
    max_iterations: int = 10_000,
    tolerance: float = 1e-10,
) -> np.ndarray:
    """Return the (weighted) geometric median of ``points``.

    Minimises ``sum_i w_i ||x - p_i||`` with the Weiszfeld fixed-point
    iteration, using the standard perturbation when an iterate lands exactly
    on an input point (where the objective is not differentiable).

    Raises
    ------
    ConvergenceError
        If the iteration does not converge within ``max_iterations``.
    """
    points = as_point_array(points)
    n, dim = points.shape
    if weights is None:
        weights = np.ones(n)
    else:
        weights = np.asarray(weights, dtype=float).reshape(-1)
        if weights.shape[0] != n:
            raise ValidationError("weights must have one entry per point")
        if np.any(weights < 0) or not np.all(np.isfinite(weights)):
            raise ValidationError("weights must be finite and non-negative")
        if weights.sum() <= 0:
            raise ValidationError("at least one weight must be positive")

    if n == 1:
        return points[0].copy()

    def objective(candidate: np.ndarray) -> float:
        return float((weights * np.linalg.norm(points - candidate[None, :], axis=1)).sum())

    # Weighted centroid is a good starting point and already optimal when all
    # points coincide.
    current = (weights[:, None] * points).sum(axis=0) / weights.sum()
    scale = max(float(np.linalg.norm(points - current[None, :], axis=1).max()), 1e-12)
    best = current.copy()
    best_value = objective(current)
    stagnant = 0

    for _ in range(max_iterations):
        distances = np.linalg.norm(points - current[None, :], axis=1)
        # Standard Weiszfeld fix near data points: clamp tiny distances so the
        # weights stay finite; if a data point is optimal the iteration stays
        # there and the stagnation check below terminates.
        distances = np.maximum(distances, 1e-12 * scale)
        inverse = weights / distances
        candidate = (inverse[:, None] * points).sum(axis=0) / inverse.sum()
        shift = float(np.linalg.norm(candidate - current))
        current = candidate
        value = objective(current)
        if value < best_value - 1e-14 * max(1.0, best_value):
            best_value = value
            best = current.copy()
            stagnant = 0
        else:
            stagnant += 1
        if shift <= tolerance * scale or stagnant >= 8:
            break
    else:
        if not np.all(np.isfinite(best)):
            raise ConvergenceError(
                f"Weiszfeld iteration did not converge within {max_iterations} iterations"
            )
    # The optimum may also sit exactly on a data point (where the objective is
    # non-differentiable and Weiszfeld can stall just short of it).
    point_values = np.array([objective(point) for point in points])
    best_point = int(np.argmin(point_values))
    if point_values[best_point] < best_value:
        return points[best_point].copy()
    return best


def median_objective(
    points: Sequence[Sequence[float]] | np.ndarray,
    candidate: Sequence[float] | np.ndarray,
    weights: Sequence[float] | np.ndarray | None = None,
) -> float:
    """Return ``sum_i w_i ||candidate - p_i||``."""
    points = as_point_array(points)
    candidate = np.asarray(candidate, dtype=float).reshape(-1)
    if weights is None:
        weights = np.ones(points.shape[0])
    else:
        weights = np.asarray(weights, dtype=float).reshape(-1)
    distances = np.linalg.norm(points - candidate[None, :], axis=1)
    return float((weights * distances).sum())
