"""Small geometric helpers shared by solvers and workload generators."""

from __future__ import annotations

from typing import Sequence

import numpy as np

from .._validation import as_point_array


def bounding_box(points: Sequence[Sequence[float]] | np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Return ``(lower, upper)`` corners of the axis-aligned bounding box."""
    points = as_point_array(points)
    return points.min(axis=0), points.max(axis=0)


def bounding_box_diagonal(points: Sequence[Sequence[float]] | np.ndarray) -> float:
    """Length of the bounding-box diagonal (a cheap diameter upper bound)."""
    lower, upper = bounding_box(points)
    return float(np.linalg.norm(upper - lower))


def exact_diameter(points: Sequence[Sequence[float]] | np.ndarray) -> float:
    """Exact Euclidean diameter by pairwise comparison (O(n^2))."""
    points = as_point_array(points)
    if points.shape[0] == 1:
        return 0.0
    sq = (points * points).sum(axis=1)
    squared = sq[:, None] + sq[None, :] - 2.0 * points @ points.T
    return float(np.sqrt(max(float(squared.max()), 0.0)))


def centroid(points: Sequence[Sequence[float]] | np.ndarray, weights: np.ndarray | None = None) -> np.ndarray:
    """(Weighted) centroid of a point set."""
    points = as_point_array(points)
    if weights is None:
        return points.mean(axis=0)
    weights = np.asarray(weights, dtype=float).reshape(-1)
    return (weights[:, None] * points).sum(axis=0) / weights.sum()


def farthest_point_index(points: np.ndarray, reference: np.ndarray) -> int:
    """Index of the point farthest (Euclidean) from ``reference``."""
    points = as_point_array(points)
    reference = np.asarray(reference, dtype=float).reshape(-1)
    return int(np.argmax(np.linalg.norm(points - reference[None, :], axis=1)))


def unique_points(points: Sequence[Sequence[float]] | np.ndarray, *, decimals: int = 12) -> np.ndarray:
    """Deduplicate a point set up to ``decimals`` rounding."""
    points = as_point_array(points)
    rounded = np.round(points, decimals=decimals)
    _, index = np.unique(rounded, axis=0, return_index=True)
    return points[np.sort(index)]
