"""Central registry of every environment variable the runtime reads.

Scattered ``os.environ.get`` calls are how env-var docs rot: a variable gets
added deep inside :mod:`repro.runtime`, the README table is updated by hand
(or not), and six months later nobody can say which spellings the code still
honors.  This module is the single choke point:

* every variable the package reads is **declared** in :data:`REGISTRY` with
  its type, default and one-line effect description;
* every read goes through the typed accessors below (:func:`env_flag`,
  :func:`env_str`, :func:`env_number`), which refuse undeclared names — an
  unregistered read is a programming error, not a silent new knob;
* the README's "Environment variables" table is **generated** from the
  registry (:func:`render_readme_table`; ``python -m repro lint
  --env-table`` prints it) and a tier-1 test asserts the README matches, so
  docs cannot drift;
* the ``ENV-REGISTRY`` rule of :mod:`repro.analysis` flags any direct
  ``os.environ`` / ``os.getenv`` access outside this module.

Accessor semantics are preserved exactly from the call sites they replaced
(PR 4/PR 5): flags treat an *unset* variable as the default but any set
value — including the empty string — as explicit (``""`` and ``"0"`` mean
off); numbers treat garbage, infinities and non-positive values as unset.
"""

from __future__ import annotations

import math
import os
from dataclasses import dataclass
from typing import Callable, TypeVar

_N = TypeVar("_N", int, float)


@dataclass(frozen=True)
class EnvVar:
    """Declaration of one environment variable the package honors."""

    name: str
    #: How the README table spells the variable and its argument.
    usage: str
    #: One-line effect description (the README table's second column).
    effect: str


#: Every environment variable the package reads, in README table order.
REGISTRY: dict[str, EnvVar] = {
    variable.name: variable
    for variable in (
        EnvVar(
            name="REPRO_SHM",
            usage="`REPRO_SHM=0`",
            effect="Disable shared-memory payload transport (fork-inheritance fallback)",
        ),
        EnvVar(
            name="REPRO_OVERSUBSCRIBE",
            usage="`REPRO_OVERSUBSCRIBE=1`",
            effect="Allow pools wider than the CPU count (tests/benchmarks)",
        ),
        EnvVar(
            name="REPRO_CONTEXT_SPILL",
            usage="`REPRO_CONTEXT_SPILL=DIR`",
            effect="Enable the cross-process context disk-spill tier",
        ),
        EnvVar(
            name="REPRO_CONTEXT_SPILL_MAX",
            usage="`REPRO_CONTEXT_SPILL_MAX=BYTES`",
            effect="Bound the spill directory's total size (oldest evicted first)",
        ),
        EnvVar(
            name="REPRO_CONTEXT_SPILL_MAX_AGE",
            usage="`REPRO_CONTEXT_SPILL_MAX_AGE=SECONDS`",
            effect="Evict spill files older than this",
        ),
        EnvVar(
            name="REPRO_CONTEXT_DTYPE",
            usage="`REPRO_CONTEXT_DTYPE=float32`",
            effect="Publish float32 bound/cost tables to worker shm segments (survivors re-scored in float64; results bit-identical)",
        ),
        EnvVar(
            name="REPRO_SANITIZE",
            usage="`REPRO_SANITIZE=shm,lock,det`",
            effect="Enable runtime sanitizers (shm lifecycle, lock order, chunk determinism)",
        ),
        EnvVar(
            name="REPRO_FAULTS",
            usage="`REPRO_FAULTS=crash:p=0.05,slow:p=0.1:ms=200,shm_attach,spill_corrupt,serve_reject:p=0.2`",
            effect="Arm deterministic fault injection (worker crashes, slow chunks, shm attach failures, spill corruption, admission-path 503s)",
        ),
        EnvVar(
            name="REPRO_SERVE_MAX_INFLIGHT",
            usage="`REPRO_SERVE_MAX_INFLIGHT=N`",
            effect="Default concurrent-request cap for `repro serve` (excess gets 429 + Retry-After)",
        ),
        EnvVar(
            name="REPRO_SERVE_MAX_BYTES",
            usage="`REPRO_SERVE_MAX_BYTES=BYTES`",
            effect="Default per-request body bound for `repro serve` (oversized requests get 413)",
        ),
        EnvVar(
            name="REPRO_SERVE_DRAIN_SECONDS",
            usage="`REPRO_SERVE_DRAIN_SECONDS=SECONDS`",
            effect="Default SIGTERM/SIGINT drain budget for `repro serve` before the runtime shuts down",
        ),
    )
}


def _declared(name: str) -> str:
    if name not in REGISTRY:
        raise KeyError(
            f"environment variable {name!r} is not declared in repro._env.REGISTRY; "
            "register it (name, usage, effect) before reading it"
        )
    return name


def env_raw(name: str) -> str | None:
    """The raw value of a *declared* variable (``None`` when unset)."""
    return os.environ.get(_declared(name))


def env_str(name: str) -> str | None:
    """A declared string variable; unset and empty both read as ``None``."""
    return env_raw(name) or None


def env_flag(name: str, *, default: bool) -> bool:
    """A declared boolean variable.

    Unset means ``default``; any set value is explicit, with ``""`` and
    ``"0"`` meaning off and everything else meaning on (so ``REPRO_SHM=``
    disables shared memory even though the flag defaults on).
    """
    raw = env_raw(name)
    if raw is None:
        return default
    return raw not in ("", "0")


def env_number(name: str, cast: Callable[[float], _N]) -> _N | None:
    """A declared positive-number variable; anything else reads as unset.

    ``cast`` is ``int`` or ``float``; garbage, overflow, infinities and
    non-positive values all mean "no limit" rather than an error, matching
    the spill-bound semantics these variables configure.
    """
    raw = env_raw(name)
    if not raw:
        return None
    try:
        parsed = float(raw)
        if not math.isfinite(parsed):  # inf survives float(); int() would raise
            return None
        value = cast(parsed)
    except (ValueError, OverflowError):  # garbage: treat as unset
        return None
    return value if value > 0 else None


def render_readme_table() -> str:
    """The README "Environment variables" table, generated from the registry.

    A tier-1 test asserts the README contains exactly this block; regenerate
    with ``python -m repro lint --env-table`` after registering a variable.
    """
    lines = ["| Variable | Effect |", "| --- | --- |"]
    for variable in REGISTRY.values():
        lines.append(f"| {variable.usage} | {variable.effect} |")
    return "\n".join(lines)
