"""Guha–Munagala-style baseline for the unrestricted assigned problem.

The paper positions its results against Guha and Munagala (PODS 2009), whose
finite-metric algorithm achieves a ``15(1+2ε)`` factor for the unrestricted
assigned k-center problem while preserving the number of centers.  Their
pipeline (truncated expectations + LP rounding) is substantial; for the
head-to-head experiment (E10) we implement a *threshold-greedy* baseline in
the same spirit, which is the standard practical rendition of
"exceeding-expectations" style algorithms on finite metrics:

1. candidate centers are the elements of the finite metric (or every location
   in Euclidean instances);
2. for a guessed cost threshold ``T`` (binary searched over the sorted set of
   per-point best expected distances), process uncertain points greedily:
   an *uncovered* point opens its own best candidate center (the one
   minimising its expected distance) and every point whose expected distance
   to that center is at most ``3T`` joins it;
3. the smallest ``T`` for which at most ``k`` centers open wins; points are
   finally assigned by expected distance.

The baseline preserves ``k``, is an O(1)-approximation in the same regime the
paper targets, and gives the experiments a faithful stand-in comparator.
DESIGN.md documents this substitution (paper baseline → threshold greedy).
"""

from __future__ import annotations

import numpy as np

from .._validation import as_point_array, check_positive_int
from ..algorithms.result import UncertainKCenterResult
from ..assignments.policies import ExpectedDistanceAssignment
from ..cost.expected import expected_cost_assigned, expected_distance_matrix
from ..uncertain.dataset import UncertainDataset


def _greedy_open_centers(expected: np.ndarray, best_candidate: np.ndarray, threshold: float) -> list[int]:
    """Open centers greedily for threshold ``T``; return opened candidate ids."""
    n = expected.shape[0]
    uncovered = np.ones(n, dtype=bool)
    opened: list[int] = []
    while uncovered.any():
        point = int(np.flatnonzero(uncovered)[0])
        candidate = int(best_candidate[point])
        opened.append(candidate)
        uncovered &= expected[:, candidate] > 3.0 * threshold + 1e-12
    return opened


def guha_munagala_baseline(
    dataset: UncertainDataset,
    k: int,
    *,
    candidates: np.ndarray | None = None,
) -> UncertainKCenterResult:
    """Threshold-greedy O(1)-style baseline (stand-in for [14])."""
    k = check_positive_int(k, name="k")
    if candidates is None:
        if dataset.metric.supports_expected_point:
            candidates = dataset.all_locations()
        else:
            candidates = dataset.metric.candidate_centers(dataset.all_locations())
    candidates = as_point_array(candidates, name="candidates")

    expected = expected_distance_matrix(dataset, candidates)  # (n, m)
    best_candidate = expected.argmin(axis=1)
    best_values = expected[np.arange(dataset.size), best_candidate]

    # Thresholds worth trying: every per-point best expected distance plus
    # every entry of the expected-distance matrix (sorted, deduplicated).
    thresholds = np.unique(np.concatenate([best_values, expected.reshape(-1)]))
    low, high = 0, thresholds.shape[0] - 1
    chosen: list[int] | None = None
    while low <= high:
        mid = (low + high) // 2
        opened = _greedy_open_centers(expected, best_candidate, float(thresholds[mid]))
        if len(opened) <= k:
            chosen = opened
            high = mid - 1
        else:
            low = mid + 1
    if chosen is None:
        # Even the largest threshold failed (cannot happen: one center covers
        # everything at T = max expected distance), but guard anyway.
        chosen = [int(best_candidate[0])]

    centers = candidates[sorted(set(chosen))]
    if centers.shape[0] < min(k, candidates.shape[0]):
        # Use any remaining budget on the candidates with the largest
        # per-point expected distances (cheap improvement, still <= k).
        remaining = [c for c in np.argsort(-best_values) if candidates.shape[0] > 0]
        extra = []
        have = {tuple(np.round(c, 12)) for c in centers}
        for point_index in remaining:
            candidate = candidates[int(best_candidate[point_index])]
            key = tuple(np.round(candidate, 12))
            if key not in have:
                extra.append(candidate)
                have.add(key)
            if centers.shape[0] + len(extra) >= k:
                break
        if extra:
            centers = np.vstack([centers, np.asarray(extra)])

    policy = ExpectedDistanceAssignment()
    labels = policy(dataset, centers)
    cost = expected_cost_assigned(dataset, centers, labels)
    return UncertainKCenterResult(
        centers=centers,
        expected_cost=cost,
        objective="unrestricted-assigned",
        assignment=labels,
        assignment_policy=policy.name,
        guaranteed_factor=None,
        metadata={"algorithm": "guha-munagala-style-threshold-greedy", "candidate_count": int(candidates.shape[0])},
    )
