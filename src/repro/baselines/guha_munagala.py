"""Guha–Munagala-style baseline for the unrestricted assigned problem.

The paper positions its results against Guha and Munagala (PODS 2009), whose
finite-metric algorithm achieves a ``15(1+2ε)`` factor for the unrestricted
assigned k-center problem while preserving the number of centers.  Their
pipeline (truncated expectations + LP rounding) is substantial; for the
head-to-head experiment (E10) we implement a *threshold-greedy* baseline in
the same spirit, which is the standard practical rendition of
"exceeding-expectations" style algorithms on finite metrics:

1. candidate centers are the elements of the finite metric (or every location
   in Euclidean instances);
2. for a guessed cost threshold ``T`` (binary searched over the sorted set of
   per-point best expected distances), process uncertain points greedily:
   an *uncovered* point opens its own best candidate center (the one
   minimising its expected distance) and every point whose expected distance
   to that center is at most ``3T`` joins it — including the opener itself,
   which is served by its own center even when its best expected distance
   exceeds ``3T`` (otherwise a tight threshold would re-open the same
   candidate forever);
3. the smallest ``T`` for which at most ``k`` *distinct* centers open wins;
   points are finally assigned by expected distance.

All expected distances and the final exact assigned cost are served by one
shared :class:`~repro.cost.context.CostContext` over the candidate set — the
matrix is computed once and the chosen configuration is scored through the
cached per-candidate CDF columns.

The baseline preserves ``k``, is an O(1)-approximation in the same regime the
paper targets, and gives the experiments a faithful stand-in comparator.
DESIGN.md documents this substitution (paper baseline → threshold greedy).
"""

from __future__ import annotations

import numpy as np

from .._validation import as_point_array, check_positive_int
from ..algorithms.result import UncertainKCenterResult
from ..assignments.policies import ExpectedDistanceAssignment
from ..cost.context import CostContext
from ..uncertain.dataset import UncertainDataset


def _greedy_open_centers(expected: np.ndarray, best_candidate: np.ndarray, threshold: float) -> list[int]:
    """Open centers greedily for threshold ``T``; return distinct opened ids.

    The opener is always force-covered by the candidate it opens: when its
    best expected distance exceeds ``3T`` the ``<= 3T`` rule would leave it
    uncovered and the loop would re-open the same candidate forever (the
    historical hang, reproduced by ``expected=[[10, 12]]`` with ``T = 1``).
    Repeated candidate ids are deduplicated so the opened count compared
    against ``k`` is the number of distinct centers.
    """
    n = expected.shape[0]
    uncovered = np.ones(n, dtype=bool)
    opened: list[int] = []
    while uncovered.any():
        point = int(np.flatnonzero(uncovered)[0])
        candidate = int(best_candidate[point])
        if candidate not in opened:
            opened.append(candidate)
        uncovered &= expected[:, candidate] > 3.0 * threshold + 1e-12
        uncovered[point] = False
    return opened


def _top_up_centers(
    chosen: list[int],
    best_candidate: np.ndarray,
    best_values: np.ndarray,
    budget: int,
) -> list[int]:
    """Spend leftover budget on unopened candidates ranked by uncovered demand.

    Demand is measured by the points' best expected distances: the points
    that are hardest to serve (largest ``best_values``) nominate their own
    best candidates first.  Already-open candidate ids are skipped, so the
    result stays deduplicated and never exceeds ``budget``.
    """
    opened = list(chosen)
    for point_index in np.argsort(-best_values):
        if len(opened) >= budget:
            break
        candidate = int(best_candidate[point_index])
        if candidate not in opened:
            opened.append(candidate)
    return opened


def guha_munagala_baseline(
    dataset: UncertainDataset,
    k: int,
    *,
    candidates: np.ndarray | None = None,
) -> UncertainKCenterResult:
    """Threshold-greedy O(1)-style baseline (stand-in for [14])."""
    k = check_positive_int(k, name="k")
    if candidates is None:
        if dataset.metric.supports_expected_point:
            candidates = dataset.all_locations()
        else:
            candidates = dataset.metric.candidate_centers(dataset.all_locations())
    candidates = as_point_array(candidates, name="candidates")

    # Expected-matrix-only consumer over m = sum_i z_i candidates: streaming
    # keeps the context at O(n m) instead of pinning (z_i, m) supports.
    context = CostContext(dataset, candidates, pin_supports=False)
    expected = context.expected  # (n, m)
    best_candidate = expected.argmin(axis=1)
    best_values = expected[np.arange(dataset.size), best_candidate]

    # Thresholds worth trying: every per-point best expected distance plus
    # every entry of the expected-distance matrix (sorted, deduplicated).
    thresholds = np.unique(np.concatenate([best_values, expected.reshape(-1)]))
    low, high = 0, thresholds.shape[0] - 1
    chosen: list[int] | None = None
    while low <= high:
        mid = (low + high) // 2
        opened = _greedy_open_centers(expected, best_candidate, float(thresholds[mid]))
        if len(opened) <= k:
            chosen = opened
            high = mid - 1
        else:
            low = mid + 1
    if chosen is None:
        # Even the largest threshold failed (cannot happen: one center covers
        # everything at T = max expected distance), but guard anyway.
        chosen = [int(best_candidate[0])]

    budget = min(k, candidates.shape[0])
    if len(chosen) < budget:
        chosen = _top_up_centers(chosen, best_candidate, best_values, budget)

    subset = np.asarray(sorted(set(chosen)), dtype=int)
    centers = candidates[subset]
    candidate_indices = context.ed_assignment(subset)
    labels = np.searchsorted(subset, candidate_indices)
    cost = context.assigned_cost(candidate_indices)
    return UncertainKCenterResult(
        centers=centers,
        expected_cost=cost,
        objective="unrestricted-assigned",
        assignment=labels,
        assignment_policy=ExpectedDistanceAssignment.name,
        guaranteed_factor=None,
        metadata={"algorithm": "guha-munagala-style-threshold-greedy", "candidate_count": int(candidates.shape[0])},
    )
