"""Reference and comparison solvers: brute force, prior-work-style baselines."""

from .brute_force import (
    MAX_ASSIGNMENT_ENUMERATION,
    MAX_CENTER_SUBSETS,
    brute_force_restricted_assigned,
    brute_force_unassigned,
    brute_force_unrestricted_assigned,
    default_candidates,
)
from .cormode_mcgregor import cormode_mcgregor_baseline
from .guha_munagala import guha_munagala_baseline
from .wang_zhang_1d import wang_zhang_1d

__all__ = [
    "brute_force_restricted_assigned",
    "brute_force_unrestricted_assigned",
    "brute_force_unassigned",
    "default_candidates",
    "MAX_CENTER_SUBSETS",
    "MAX_ASSIGNMENT_ENUMERATION",
    "guha_munagala_baseline",
    "cormode_mcgregor_baseline",
    "wang_zhang_1d",
]
