"""Cormode–McGregor-style location-pooling baseline.

Cormode and McGregor (PODS 2008) initiated probabilistic clustering and gave
bicriteria algorithms; a practical rendition of their "cluster the possible
locations" idea is to ignore the ownership structure, pool all ``N = sum z_i``
locations into one deterministic point set, and run a deterministic k-center
algorithm on it (optionally with a blown-up number of centers — the
bicriteria knob).  The uncertain points are then assigned to the resulting
centers by expected distance.

This is the natural "what if we ignore uncertainty semantics" comparator the
experiments contrast the paper's reductions with.
"""

from __future__ import annotations

import numpy as np

from .._validation import check_positive_int
from ..algorithms.result import UncertainKCenterResult
from ..assignments.policies import ExpectedDistanceAssignment
from ..cost.context import CostContext
from ..deterministic.gonzalez import gonzalez_kcenter
from ..uncertain.dataset import UncertainDataset


def cormode_mcgregor_baseline(
    dataset: UncertainDataset,
    k: int,
    *,
    center_blowup: float = 1.0,
) -> UncertainKCenterResult:
    """Pool every location and run deterministic k-center on the pool.

    Parameters
    ----------
    center_blowup:
        Bicriteria knob: the deterministic solver is allowed
        ``ceil(center_blowup * k)`` centers (1.0 preserves ``k``, 2.0 mirrors
        the "2k centers" bicriteria result of [7]).
    """
    k = check_positive_int(k, name="k")
    budget = max(int(np.ceil(center_blowup * k)), 1)
    pooled = dataset.all_locations()
    deterministic = gonzalez_kcenter(pooled, budget, dataset.metric)
    centers = deterministic.centers

    # Both objectives are scored off one shared context: the assigned cost
    # through the cached per-candidate CDF columns, the unassigned cost
    # through the rank-keyed batched evaluator.
    context = CostContext(dataset, centers)
    labels = context.expected.argmin(axis=1)
    assigned_cost = context.assigned_cost(labels)
    unassigned_cost = context.unassigned_cost(np.arange(centers.shape[0]))
    policy = ExpectedDistanceAssignment()
    return UncertainKCenterResult(
        centers=centers,
        expected_cost=assigned_cost,
        objective="unrestricted-assigned",
        assignment=labels,
        assignment_policy=policy.name,
        guaranteed_factor=None,
        metadata={
            "algorithm": "cormode-mcgregor-style-location-pooling",
            "center_budget": budget,
            "unassigned_cost": unassigned_cost,
        },
    )
