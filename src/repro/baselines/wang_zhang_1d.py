"""Wang–Zhang-style solver for the 1-D restricted assigned problem.

Wang and Zhang (TCS 2015) solve the one-dimensional restricted assigned
k-center problem under the expected-distance assignment exactly in
``O(zn log zn + n log k log n)`` time.  The paper uses that result (through
Theorem 2.3) to obtain a 3-approximation for the unrestricted assigned
problem in R^1 — Table 1's R^1 row.

Their algorithm relies on intricate parametric search machinery.  For the
reproduction we solve the same *objective* with a numerical optimiser whose
output is validated against brute force on small instances:

1. generate a strong initial center set (exact deterministic 1-D k-center of
   the expected points, plus the location multiset);
2. coordinate-descent each center on the exact assigned expected cost under
   the ED assignment (grid line search per coordinate; the cost is piecewise
   smooth and unimodal along a coordinate in practice — the search brackets
   the best of a dense grid plus local refinement to be robust to
   non-convexity);
3. repeat from multiple starts and keep the best.

Cost-context reuse
------------------
Coordinate descent builds **one** :class:`~repro.cost.context.CostContext`
per restart over ``[center columns | coarse grid | fine grid]`` and then
*splices* the moving columns per sweep through
:meth:`CostContext.replace_candidate_columns`: the fine grid (which tracks
the current coordinate) replaces its 21 columns, and an accepted move
replaces the one center column it changed.  Only the replaced CDF columns
are re-sorted — the historical implementation constructed a fresh context
(one metric pass + a sort of every column) per coordinate per round.  Final
and initial costs come from the same context; :func:`_ed_cost` additionally
accepts an existing context or a :class:`~repro.runtime.store.ContextStore`
so external callers stop building throwaway contexts too.

DESIGN.md records this substitution (published parametric-search algorithm →
numerical optimiser of the same objective).  The E8 experiment checks the
solver matches brute force on every micro instance and that the Theorem 2.3
chain (its cost vs the unrestricted optimum) stays within factor 3.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from .._validation import check_positive_int
from ..algorithms.result import UncertainKCenterResult
from ..assignments.policies import ExpectedDistanceAssignment
from ..cost.context import CostContext
from ..deterministic.one_dimensional import one_dimensional_kcenter
from ..exceptions import ValidationError
from ..runtime import incumbent as incumbent_module
from ..uncertain.dataset import UncertainDataset

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..runtime.store import ContextStore

#: Points in the coarse (whole-range) and fine (around the current center)
#: line-search grids of one coordinate-descent step.
_COARSE_GRID_POINTS = 33
_FINE_GRID_POINTS = 21


def _locate_columns(context: CostContext, centers: np.ndarray) -> np.ndarray | None:
    """Column indices of ``centers`` rows inside ``context.candidates``.

    ``None`` when any center is not a candidate of the context (the caller
    then falls back to building a context over exactly ``centers``).
    """
    columns = np.empty(centers.shape[0], dtype=int)
    for row, center in enumerate(centers):
        matches = np.flatnonzero(np.all(context.candidates == center, axis=1))
        if matches.shape[0] == 0:
            return None
        columns[row] = matches[0]
    return columns


def _ed_cost(
    dataset: UncertainDataset,
    centers: np.ndarray,
    *,
    context: CostContext | None = None,
    store: "ContextStore | None" = None,
) -> tuple[float, np.ndarray]:
    """Exact ED-assigned cost of ``centers`` plus the ED labels.

    Routing order: an explicit ``context`` whose candidate set contains every
    center (its cached expected matrix and evaluator columns are reused —
    e.g. the coordinate-descent context, whose first ``k`` columns mirror the
    current centers); a ``store`` (memoized across repeated calls on the same
    pair); else a throwaway :class:`CostContext` as before.
    """
    if context is not None and context.dataset is dataset:
        columns = _locate_columns(context, centers)
        if columns is not None:
            local = context.expected[:, columns].argmin(axis=1)
            cost = context.assigned_cost(columns[local])
            return float(cost), local
    if store is not None:
        context = store.get(dataset, centers)
    else:
        context = CostContext(dataset, centers)
    labels = context.expected.argmin(axis=1)
    return context.assigned_cost(labels), labels


def _coordinate_descent(
    dataset: UncertainDataset, centers: np.ndarray, *, rounds: int = 30
) -> tuple[np.ndarray, float]:
    """Refine 1-D centers one at a time against the exact ED-assigned cost.

    One context serves the whole descent: candidate columns are laid out as
    ``[k centers | coarse grid | fine grid]`` and each step splices only the
    columns that moved (the fine grid before scoring, the accepted center
    after).  Scoring a step is one batched exact-cost call: per grid value
    the allowed columns are the static centers with column ``index`` swapped
    for that grid position, the ED assignment is an argmin over the cached
    expected matrix, and the exact costs come out of one chunked sweep.
    """
    centers = centers.copy()
    k = centers.shape[0]
    all_values = np.sort(dataset.all_locations()[:, 0])
    span = float(all_values[-1] - all_values[0]) if all_values.shape[0] > 1 else 1.0
    coarse = np.linspace(all_values[0], all_values[-1], _COARSE_GRID_POINTS)
    # Fine columns start as placeholders (copies of the first center); they
    # are replaced before the first score, so their initial value never
    # contributes to any cost.
    candidates = np.vstack(
        [centers, coarse.reshape(-1, 1), np.repeat(centers[:1], _FINE_GRID_POINTS, axis=0)]
    )
    context = CostContext(dataset, candidates)
    grid_columns = np.arange(k, k + _COARSE_GRID_POINTS + _FINE_GRID_POINTS)
    fine_columns = grid_columns[_COARSE_GRID_POINTS:]
    batch = grid_columns.shape[0]

    best_cost, _ = _ed_cost(dataset, centers, context=context)
    for _ in range(rounds):
        improved = False
        for index in range(k):
            # Candidate positions: a coarse grid over the data range plus a
            # fine grid around the current position.
            fine = centers[index, 0] + np.linspace(-0.05, 0.05, _FINE_GRID_POINTS) * max(span, 1e-9)
            grid = np.concatenate([coarse, fine])
            context.replace_candidate_columns(fine_columns, fine.reshape(-1, 1))
            allowed = np.tile(np.arange(k), (batch, 1))
            allowed[:, index] = grid_columns
            local = context.expected[:, allowed].argmin(axis=2)  # (n, B)
            candidate_index_rows = np.take_along_axis(allowed, local.T, axis=1)  # (B, n)
            costs = context.assigned_costs(candidate_index_rows)
            winner = int(np.argmin(costs))
            if costs[winner] < best_cost - 1e-15:
                best_cost = float(costs[winner])
                centers[index, 0] = grid[winner]
                context.replace_candidate_columns(
                    np.asarray([index]), centers[index : index + 1]
                )
                improved = True
        if not improved:
            break
    return centers, best_cost


def wang_zhang_1d(
    dataset: UncertainDataset,
    k: int,
    *,
    restarts: int = 2,
    refine_rounds: int = 30,
) -> UncertainKCenterResult:
    """Restricted assigned (ED) k-center on the line (Wang–Zhang objective)."""
    if dataset.dimension != 1:
        raise ValidationError("wang_zhang_1d expects one-dimensional uncertain points")
    k = check_positive_int(k, name="k")

    starts: list[np.ndarray] = []
    expected_points = dataset.expected_points()
    starts.append(one_dimensional_kcenter(expected_points, k).centers)
    locations = dataset.all_locations()
    starts.append(one_dimensional_kcenter(locations, k).centers)
    # Quantile-spread start for robustness on skewed instances.
    quantiles = np.quantile(locations[:, 0], np.linspace(0.1, 0.9, k)).reshape(-1, 1)
    starts.append(quantiles)
    starts = starts[: max(restarts + 1, 1)]

    # Cross-restart best tracking goes through the same incumbent machinery
    # as the brute-force shards and the unrestricted polish stage: each
    # restart *proposes* its achieved cost (a feasible ED-assigned cost, so
    # the exactness contract holds) and the handle keeps the running
    # minimum.  A nested pruned map inside a restart would prune against
    # this value for free via :func:`incumbent.active`.
    best_centers: np.ndarray | None = None
    with incumbent_module.serial_incumbent(float("inf")) as handle:
        for start in starts:
            centers = start.copy()
            if centers.shape[0] < k:
                # Pad degenerate starts (fewer distinct centers than k).
                extra = np.repeat(centers[-1:], k - centers.shape[0], axis=0)
                centers = np.vstack([centers, extra])
            centers, cost = _coordinate_descent(dataset, centers, rounds=refine_rounds)
            if cost < handle.value():
                best_centers = centers
            handle.propose(cost)
        best_cost = handle.value()
    assert best_centers is not None

    policy = ExpectedDistanceAssignment()
    labels = policy(dataset, best_centers)
    return UncertainKCenterResult(
        centers=best_centers,
        expected_cost=float(best_cost),
        objective="restricted-assigned",
        assignment=labels,
        assignment_policy=policy.name,
        guaranteed_factor=None,
        metadata={"algorithm": "wang-zhang-1d-numerical", "restarts": len(starts)},
    )
