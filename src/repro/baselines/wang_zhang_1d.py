"""Wang–Zhang-style solver for the 1-D restricted assigned problem.

Wang and Zhang (TCS 2015) solve the one-dimensional restricted assigned
k-center problem under the expected-distance assignment exactly in
``O(zn log zn + n log k log n)`` time.  The paper uses that result (through
Theorem 2.3) to obtain a 3-approximation for the unrestricted assigned
problem in R^1 — Table 1's R^1 row.

Their algorithm relies on intricate parametric search machinery.  For the
reproduction we solve the same *objective* with a numerical optimiser whose
output is validated against brute force on small instances:

1. generate a strong initial center set (exact deterministic 1-D k-center of
   the expected points, plus the location multiset);
2. coordinate-descent each center on the exact assigned expected cost under
   the ED assignment (golden-section line search per coordinate; the cost is
   piecewise smooth and unimodal along a coordinate in practice — the line
   search brackets the best of a dense grid plus local refinement to be
   robust to non-convexity);
3. repeat from multiple starts and keep the best.

DESIGN.md records this substitution (published parametric-search algorithm →
numerical optimiser of the same objective).  The E8 experiment checks the
solver matches brute force on every micro instance and that the Theorem 2.3
chain (its cost vs the unrestricted optimum) stays within factor 3.
"""

from __future__ import annotations

import numpy as np

from .._validation import check_positive_int
from ..algorithms.result import UncertainKCenterResult
from ..assignments.policies import ExpectedDistanceAssignment
from ..cost.context import CostContext
from ..deterministic.one_dimensional import one_dimensional_kcenter
from ..exceptions import ValidationError
from ..uncertain.dataset import UncertainDataset


def _ed_cost(dataset: UncertainDataset, centers: np.ndarray) -> tuple[float, np.ndarray]:
    context = CostContext(dataset, centers)
    labels = context.expected.argmin(axis=1)
    return context.assigned_cost(labels), labels


def _coordinate_sweep_costs(
    dataset: UncertainDataset, centers: np.ndarray, index: int, grid: np.ndarray
) -> np.ndarray:
    """ED-assigned cost of replacing ``centers[index]`` by each grid value.

    One :class:`CostContext` is built over ``centers + grid`` and the whole
    grid is scored through its batch kernel: per grid value the allowed
    columns are the static centers with column ``index`` swapped for that
    grid position, the ED assignment is an argmin over the cached expected
    matrix, and the exact costs come out of one chunked sweep — instead of
    one scratch ``expected_cost_assigned`` call per grid value.
    """
    k = centers.shape[0]
    candidates = np.vstack([centers, grid.reshape(-1, 1)])
    context = CostContext(dataset, candidates)
    batch = grid.shape[0]
    allowed = np.tile(np.arange(k), (batch, 1))
    allowed[:, index] = k + np.arange(batch)
    local = context.expected[:, allowed].argmin(axis=2)  # (n, B)
    candidate_index_rows = np.take_along_axis(allowed, local.T, axis=1)  # (B, n)
    return context.assigned_costs(candidate_index_rows)


def _coordinate_descent(dataset: UncertainDataset, centers: np.ndarray, *, rounds: int = 30) -> tuple[np.ndarray, float]:
    """Refine 1-D centers one at a time against the exact ED-assigned cost."""
    centers = centers.copy()
    all_values = np.sort(dataset.all_locations()[:, 0])
    span = float(all_values[-1] - all_values[0]) if all_values.shape[0] > 1 else 1.0
    best_cost, _ = _ed_cost(dataset, centers)
    for _ in range(rounds):
        improved = False
        for index in range(centers.shape[0]):
            # Candidate positions: a coarse grid over the data range plus a
            # fine grid around the current position.
            coarse = np.linspace(all_values[0], all_values[-1], 33)
            fine = centers[index, 0] + np.linspace(-0.05, 0.05, 21) * max(span, 1e-9)
            grid = np.concatenate([coarse, fine])
            costs = _coordinate_sweep_costs(dataset, centers, index, grid)
            winner = int(np.argmin(costs))
            if costs[winner] < best_cost - 1e-15:
                best_cost = float(costs[winner])
                centers[index, 0] = grid[winner]
                improved = True
        if not improved:
            break
    return centers, best_cost


def wang_zhang_1d(
    dataset: UncertainDataset,
    k: int,
    *,
    restarts: int = 2,
    refine_rounds: int = 30,
) -> UncertainKCenterResult:
    """Restricted assigned (ED) k-center on the line (Wang–Zhang objective)."""
    if dataset.dimension != 1:
        raise ValidationError("wang_zhang_1d expects one-dimensional uncertain points")
    k = check_positive_int(k, name="k")

    starts: list[np.ndarray] = []
    expected_points = dataset.expected_points()
    starts.append(one_dimensional_kcenter(expected_points, k).centers)
    locations = dataset.all_locations()
    starts.append(one_dimensional_kcenter(locations, k).centers)
    # Quantile-spread start for robustness on skewed instances.
    quantiles = np.quantile(locations[:, 0], np.linspace(0.1, 0.9, k)).reshape(-1, 1)
    starts.append(quantiles)
    starts = starts[: max(restarts + 1, 1)]

    best_centers: np.ndarray | None = None
    best_cost = np.inf
    for start in starts:
        centers = start.copy()
        if centers.shape[0] < k:
            # Pad degenerate starts (fewer distinct centers than k).
            extra = np.repeat(centers[-1:], k - centers.shape[0], axis=0)
            centers = np.vstack([centers, extra])
        centers, cost = _coordinate_descent(dataset, centers, rounds=refine_rounds)
        if cost < best_cost:
            best_cost = cost
            best_centers = centers
    assert best_centers is not None

    policy = ExpectedDistanceAssignment()
    labels = policy(dataset, best_centers)
    return UncertainKCenterResult(
        centers=best_centers,
        expected_cost=float(best_cost),
        objective="restricted-assigned",
        assignment=labels,
        assignment_policy=policy.name,
        guaranteed_factor=None,
        metadata={"algorithm": "wang-zhang-1d-numerical", "restarts": len(starts)},
    )
