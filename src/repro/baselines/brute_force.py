"""Brute-force reference solvers for small uncertain instances.

These produce the "best known" solutions the experiments compare against on
micro instances (and the *exact* optimum when centers are restricted to a
finite candidate set, e.g. in finite metric spaces, and assignments are
enumerated exhaustively).

* :func:`brute_force_restricted_assigned` — best centers from a candidate
  set for a fixed restricted assignment rule.
* :func:`brute_force_unrestricted_assigned` — best centers from a candidate
  set together with the best assignment (exhaustive over the ``k^n``
  assignments when affordable, local-search polish otherwise).
* :func:`brute_force_unassigned` — best centers from a candidate set for the
  unassigned objective.

All of them enumerate ``C(m, k)`` candidate subsets, so they are exponential
in ``k``; a safety cap protects against accidental misuse.  All exact scoring
goes through one shared :class:`~repro.cost.context.CostContext` per call:
assigned costs through its cached per-candidate sorted CDF columns (batch
kernel), unassigned costs through its rank-keyed batched evaluator, and
every "argmin of a score" assignment rule (ED, EP, OC, nearest-mode) through
:meth:`~repro.assignments.base.AssignmentPolicy.candidate_scores`, which
turns the per-subset policy evaluation into one vectorized argmin — only
genuinely black-box rules (local-search optimal assignment) fall back to a
per-subset policy call, and even those are scored through the shared
evaluator rather than a scratch engine invocation.

When ``k`` exceeds the number of available candidates the solvers run with
the largest feasible ``k`` and record both ``requested_k`` and
``effective_k`` in the result metadata instead of silently solving a
different problem.
"""

from __future__ import annotations

from itertools import combinations, islice, product
from math import comb

import numpy as np

from .._validation import as_point_array, check_positive_int
from ..algorithms.result import UncertainKCenterResult
from ..assignments.base import AssignmentPolicy
from ..assignments.policies import ExpectedDistanceAssignment
from ..cost.context import DEFAULT_CHUNK_ROWS, CostContext
from ..exceptions import ValidationError
from ..uncertain.dataset import UncertainDataset

#: Safety cap on the number of candidate subsets a brute-force call may try.
MAX_CENTER_SUBSETS = 300_000
#: Cap on exhaustive assignment enumeration work (subsets * k ** n).
MAX_ASSIGNMENT_ENUMERATION = 250_000


def default_candidates(dataset: UncertainDataset) -> np.ndarray:
    """Reasonable candidate centers: all locations (+ expected points)."""
    if dataset.metric.supports_expected_point:
        return np.vstack([dataset.all_locations(), dataset.expected_points()])
    return dataset.metric.candidate_centers(dataset.all_locations())


def _effective_k(k: int, candidate_count: int) -> tuple[int, dict[str, int]]:
    """Clamp ``k`` to the candidate count, recording the clamp explicitly."""
    effective = min(k, candidate_count)
    metadata = {"requested_k": int(k), "effective_k": int(effective)}
    return effective, metadata


def _iter_center_subsets(candidate_count: int, k: int):
    if comb(candidate_count, k) > MAX_CENTER_SUBSETS:
        raise ValidationError(
            f"brute force would enumerate C({candidate_count}, {k}) center subsets; "
            f"cap is {MAX_CENTER_SUBSETS}"
        )
    yield from combinations(range(candidate_count), k)


def _iter_index_chunks(iterator, chunk_rows: int = DEFAULT_CHUNK_ROWS):
    """Chunk an iterator of index tuples into ``(B, n)`` int arrays."""
    while True:
        chunk = list(islice(iterator, chunk_rows))
        if not chunk:
            return
        yield np.asarray(chunk, dtype=int)


def _iter_subset_chunks(candidate_count: int, k: int, chunk_rows: int = DEFAULT_CHUNK_ROWS):
    """Yield ``(B, k)`` arrays of candidate subsets, ``B <= chunk_rows``."""
    yield from _iter_index_chunks(_iter_center_subsets(candidate_count, k), chunk_rows)


def brute_force_restricted_assigned(
    dataset: UncertainDataset,
    k: int,
    *,
    assignment: AssignmentPolicy | None = None,
    candidates: np.ndarray | None = None,
) -> UncertainKCenterResult:
    """Best candidate centers under a fixed restricted assignment rule.

    This is exact (over the candidate set) because the assignment rule is a
    deterministic function of the centers.
    """
    k = check_positive_int(k, name="k")
    policy = assignment or ExpectedDistanceAssignment()
    if candidates is None:
        candidates = default_candidates(dataset)
    candidates = as_point_array(candidates, name="candidates")
    k, k_metadata = _effective_k(k, candidates.shape[0])

    context = CostContext(dataset, candidates)
    if isinstance(policy, ExpectedDistanceAssignment):
        scores = context.expected  # cached; bit-identical to the policy's matrix
    else:
        scores = policy.candidate_scores(dataset, candidates)

    best_cost = np.inf
    best_subset: tuple[int, ...] | None = None
    best_assignment: np.ndarray | None = None
    if scores is not None:
        best_candidate_indices: np.ndarray | None = None
        for subset_rows in _iter_subset_chunks(candidates.shape[0], k):
            candidate_index_rows = context.score_assignments(scores, subset_rows)
            costs = context.assigned_costs(candidate_index_rows)
            winner = int(np.argmin(costs))
            if costs[winner] < best_cost:
                best_cost = float(costs[winner])
                best_subset = tuple(int(c) for c in subset_rows[winner])
                best_candidate_indices = candidate_index_rows[winner]
        assert best_subset is not None and best_candidate_indices is not None
        best_assignment = np.searchsorted(np.asarray(best_subset), best_candidate_indices)
    else:
        # Black-box assignment rule: one policy call per subset, but the
        # exact cost still comes from the shared evaluator's cached columns
        # (built once up front — without this, every subset would fall back
        # to the context's lazy single-score path and re-derive distances).
        evaluator = context.evaluator
        for subset in _iter_center_subsets(candidates.shape[0], k):
            columns = np.asarray(subset, dtype=int)
            centers = candidates[columns]
            labels = np.asarray(policy(dataset, centers), dtype=int)
            cost = evaluator.cost(columns[labels])
            if cost < best_cost:
                best_cost, best_subset, best_assignment = cost, subset, labels
    assert best_subset is not None and best_assignment is not None
    return UncertainKCenterResult(
        centers=candidates[list(best_subset)],
        expected_cost=float(best_cost),
        objective="restricted-assigned",
        assignment=np.asarray(best_assignment, dtype=int),
        assignment_policy=policy.name,
        guaranteed_factor=None,
        metadata={
            "algorithm": "brute-force-restricted",
            "candidate_count": int(candidates.shape[0]),
            **k_metadata,
        },
    )


def _iter_assignment_chunks(columns: np.ndarray, n: int, chunk_rows: int = DEFAULT_CHUNK_ROWS):
    """Yield ``(B, n)`` chunks of all ``kk ** n`` assignments over ``columns``."""
    iterator = product(range(columns.shape[0]), repeat=n)
    for choices in _iter_index_chunks(iterator, chunk_rows):
        yield columns[choices]


def brute_force_unrestricted_assigned(
    dataset: UncertainDataset,
    k: int,
    *,
    candidates: np.ndarray | None = None,
    exhaustive_assignment: bool | None = None,
    polish_top: int = 8,
) -> UncertainKCenterResult:
    """Best-known candidate centers together with the best assignment.

    Every ``C(m, k)`` candidate subset is scored with the expected-distance
    assignment (one batched exact cost evaluation per chunk of subsets).  The
    ``polish_top`` cheapest subsets are then re-optimised, either by
    exhaustive assignment enumeration (exact for those subsets; enabled
    automatically when ``polish_top * k ** n`` is small, or forced with
    ``exhaustive_assignment=True``) or by single-move local search through
    the round-amortized sweep.

    For an exact optimum over the candidate set pass
    ``polish_top >= C(m, k)`` together with ``exhaustive_assignment=True``
    (micro instances only).
    """
    k = check_positive_int(k, name="k")
    if candidates is None:
        candidates = default_candidates(dataset)
    candidates = as_point_array(candidates, name="candidates")
    k, k_metadata = _effective_k(k, candidates.shape[0])
    n = dataset.size

    context = CostContext(dataset, candidates)
    scored: list[tuple[float, tuple[int, ...], np.ndarray]] = []
    for subset_rows in _iter_subset_chunks(candidates.shape[0], k):
        candidate_index_rows = context.ed_assignments(subset_rows)
        costs = context.assigned_costs(candidate_index_rows)
        scored.extend(
            (float(cost), tuple(int(c) for c in subset), candidate_indices)
            for cost, subset, candidate_indices in zip(costs, subset_rows, candidate_index_rows)
        )
    scored.sort(key=lambda entry: entry[0])

    polish_top = max(1, min(polish_top, len(scored)))
    if exhaustive_assignment is None:
        exhaustive_assignment = polish_top * (k**n) <= MAX_ASSIGNMENT_ENUMERATION

    best_cost, best_subset, best_candidate_indices = scored[0]
    for cost, subset, _ in scored[:polish_top]:
        columns = np.asarray(subset, dtype=int)
        if exhaustive_assignment:
            for assignment_rows in _iter_assignment_chunks(columns, n):
                costs = context.assigned_costs(assignment_rows)
                winner = int(np.argmin(costs))
                if costs[winner] < best_cost:
                    best_cost = float(costs[winner])
                    best_subset, best_candidate_indices = subset, assignment_rows[winner]
        else:
            candidate_indices = context.ed_assignment(subset)
            candidate_indices = _single_move_polish(context, columns, candidate_indices)
            candidate_cost = context.assigned_cost(candidate_indices)
            if candidate_cost < best_cost:
                best_cost, best_subset, best_candidate_indices = candidate_cost, subset, candidate_indices

    columns = np.asarray(best_subset, dtype=int)
    labels = np.searchsorted(columns, best_candidate_indices)
    return UncertainKCenterResult(
        centers=candidates[list(best_subset)],
        expected_cost=float(best_cost),
        objective="unrestricted-assigned",
        assignment=np.asarray(labels, dtype=int),
        assignment_policy="exhaustive" if exhaustive_assignment else "optimal-local",
        guaranteed_factor=None,
        metadata={
            "algorithm": "brute-force-unrestricted",
            "candidate_count": int(candidates.shape[0]),
            "exhaustive_assignment": bool(exhaustive_assignment),
            "polished_subsets": polish_top,
            **k_metadata,
        },
    )


def _single_move_polish(
    context: CostContext,
    columns: np.ndarray,
    candidate_indices: np.ndarray,
    *,
    max_rounds: int = 10,
) -> np.ndarray:
    """Single-point reassignment local search on the exact assigned cost.

    One :class:`~repro.cost.expected.LocalSearchSweep` carries the whole
    search: each point's rest profile is divided out of the cached union
    sweep (not re-sorted per point) and accepted moves are spliced in
    incrementally.
    """
    evaluator = context.evaluator
    sweep = evaluator.local_search_sweep(candidate_indices)
    best_cost = sweep.cost()
    n = candidate_indices.shape[0]
    for _ in range(max_rounds):
        improved = False
        for point_index in range(n):
            original = sweep.column_of(point_index)
            profile = sweep.rest_profile(point_index)
            costs = evaluator.move_costs(profile, columns)
            winner = int(np.argmin(costs))
            tolerance = 1e-12 * max(1.0, abs(best_cost))
            if int(columns[winner]) != original and costs[winner] < best_cost - tolerance:
                sweep.apply_move(point_index, int(columns[winner]))
                best_cost = float(costs[winner])
                improved = True
        if not improved:
            break
    return sweep.columns


def brute_force_unassigned(
    dataset: UncertainDataset,
    k: int,
    *,
    candidates: np.ndarray | None = None,
) -> UncertainKCenterResult:
    """Best candidate centers for the unassigned expected cost (exact over the set)."""
    k = check_positive_int(k, name="k")
    if candidates is None:
        candidates = default_candidates(dataset)
    candidates = as_point_array(candidates, name="candidates")
    k, k_metadata = _effective_k(k, candidates.shape[0])

    context = CostContext(dataset, candidates)
    best_cost = np.inf
    best_subset: tuple[int, ...] | None = None
    for subset_rows in _iter_subset_chunks(candidates.shape[0], k):
        costs = context.unassigned_costs(subset_rows)
        winner = int(np.argmin(costs))
        if costs[winner] < best_cost:
            best_cost = float(costs[winner])
            best_subset = tuple(int(c) for c in subset_rows[winner])
    assert best_subset is not None
    return UncertainKCenterResult(
        centers=candidates[list(best_subset)],
        expected_cost=float(best_cost),
        objective="unassigned",
        guaranteed_factor=None,
        metadata={
            "algorithm": "brute-force-unassigned",
            "candidate_count": int(candidates.shape[0]),
            **k_metadata,
        },
    )
