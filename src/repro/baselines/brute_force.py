"""Brute-force reference solvers for small uncertain instances.

These produce the "best known" solutions the experiments compare against on
micro instances (and the *exact* optimum when centers are restricted to a
finite candidate set, e.g. in finite metric spaces, and assignments are
enumerated exhaustively).

* :func:`brute_force_restricted_assigned` — best centers from a candidate
  set for a fixed restricted assignment rule.
* :func:`brute_force_unrestricted_assigned` — best centers from a candidate
  set together with the best assignment (exhaustive over the ``k^n``
  assignments when affordable, local-search polish otherwise).
* :func:`brute_force_unassigned` — best centers from a candidate set for the
  unassigned objective.

All of them enumerate ``C(m, k)`` candidate subsets, so they are exponential
in ``k``; a safety cap protects against accidental misuse.  All exact scoring
goes through one shared :class:`~repro.cost.context.CostContext` per call
(memoized across calls when a :class:`~repro.runtime.store.ContextStore` is
passed): assigned costs through its cached per-candidate sorted CDF columns
(batch kernel), unassigned costs through its rank-keyed batched evaluator,
and every "argmin of a score" assignment rule (ED, EP, OC, nearest-mode)
through :meth:`~repro.assignments.base.AssignmentPolicy.candidate_scores`,
which turns the per-subset policy evaluation into one vectorized argmin —
only genuinely black-box rules (local-search optimal assignment) fall back to
a per-subset policy call, and even those are scored through the shared
evaluator rather than a scratch engine invocation.

Branch-and-bound pruning
------------------------
By default (``prune=True``) the enumerations run as best-first
branch-and-bound instead of exhaustive scans:

* an **incumbent** — the best achieved cost so far — is seeded *before*
  enumeration by a greedy cover over the cached expected-distance matrix
  (:func:`_greedy_seed_columns`), scored through the exact kernels, so
  pruning bites from the first chunk;
* every chunk first evaluates a **vectorized admissible lower bound**
  (:meth:`~repro.cost.context.CostContext.subset_assigned_lower_bounds`,
  :meth:`~repro.cost.context.CostContext.subset_unassigned_lower_bounds`, or
  per-assignment-row / shared-prefix bounds for the exhaustive-assignment
  stage) and skips exactly the rows whose bound exceeds the incumbent by
  more than the floating-point slack
  (:func:`repro.bounds.lower_bounds.prune_margin`);
* across worker shards the incumbent is **shared**
  (:mod:`repro.runtime.incumbent`): each chunk refreshes its threshold once
  at chunk start and publishes its achieved minimum through a lock-light
  compare-and-swap, so one shard's early find shrinks every other shard's
  work.

Pruning is **exact**: every value the incumbent ever holds is the cost of a
feasible solution of the same enumeration (the seed subset or a fully
evaluated row), hence an upper bound on the enumeration's optimum ``C*``; a
skipped row has ``cost >= bound > incumbent >= C*`` and therefore can never
win under the first-strict-minimum tie rule.  The returned subset,
assignment, and cost are bit-identical to the unpruned path (``prune=False``
or ``--no-prune``) at every worker count, with shared memory on or off —
only *which* rows pay the exact kernels varies with timing.  Result metadata
records ``evaluated_rows`` / ``pruned_rows`` next to ``requested_k`` /
``effective_k`` so the win is observable (counts are deterministic serially;
under workers they depend on cross-shard timing while results never do).

Process parallelism
-------------------
Every enumeration is chunked into ``(B, .)`` batches of at most
``chunk_rows`` rows (default :data:`~repro.cost.context.DEFAULT_CHUNK_ROWS`,
which also bounds per-worker batch memory) and the chunks are mapped over
:func:`repro.runtime.parallel.parallel_map`.  ``workers=1`` — the default —
runs the identical chunk loop in-process, and a requested worker count is
clamped to the CPUs actually available, so ``workers=N`` is never slower
than serial on a small box.  The fully built context (pinned supports,
sorted CDF columns, rank-merge tables where needed) is published to shared
memory once and each chunk dispatch to the persistent worker pool carries
only the descriptor, its work slice and the incumbent token (``shm=False``
falls back to shipping the payload per call via fork inheritance); chunks
reduce in submission order with the same first-strict-minimum rule serial
execution applies, so results are bit-identical for every worker count, with
shared memory on or off.

When ``k`` exceeds the number of available candidates the solvers run with
the largest feasible ``k`` and record both ``requested_k`` and
``effective_k`` in the result metadata instead of silently solving a
different problem.
"""

from __future__ import annotations

from itertools import combinations, islice
from math import comb
from typing import TYPE_CHECKING

import numpy as np

from .._validation import as_point_array, check_positive_int
from ..algorithms.result import UncertainKCenterResult
from ..assignments.base import AssignmentPolicy
from ..assignments.policies import ExpectedDistanceAssignment
from ..bounds.lower_bounds import FLOAT32_SLACK, PRUNE_SLACK, prune_margin
from ..cost.context import DEFAULT_CHUNK_ROWS, CostContext
from ..exceptions import ValidationError
from ..runtime import incumbent as incumbent_module
from ..runtime.parallel import (
    MapOutcome,
    iter_chunk_bounds,
    parallel_map,
    parallel_map_ordered,
    resolve_workers,
)
from ..uncertain.dataset import UncertainDataset

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..runtime.store import ContextStore

#: Safety cap on the number of candidate subsets a brute-force call may try.
MAX_CENTER_SUBSETS = 300_000
#: Cap on exhaustive assignment enumeration work (subsets * k ** n).
MAX_ASSIGNMENT_ENUMERATION = 250_000


def default_candidates(dataset: UncertainDataset) -> np.ndarray:
    """Reasonable candidate centers: all locations (+ expected points)."""
    if dataset.metric.supports_expected_point:
        return np.vstack([dataset.all_locations(), dataset.expected_points()])
    return dataset.metric.candidate_centers(dataset.all_locations())


def _effective_k(k: int, candidate_count: int) -> tuple[int, dict[str, int]]:
    """Clamp ``k`` to the candidate count, recording the clamp explicitly."""
    effective = min(k, candidate_count)
    metadata = {"requested_k": int(k), "effective_k": int(effective)}
    return effective, metadata


def _checked_subset_count(candidate_count: int, k: int) -> int:
    total = comb(candidate_count, k)
    if total > MAX_CENTER_SUBSETS:
        raise ValidationError(
            f"brute force would enumerate C({candidate_count}, {k}) center subsets; "
            f"cap is {MAX_CENTER_SUBSETS}"
        )
    return total


def _iter_center_subsets(candidate_count: int, k: int):
    _checked_subset_count(candidate_count, k)
    yield from combinations(range(candidate_count), k)


def _iter_index_chunks(iterator, chunk_rows: int = DEFAULT_CHUNK_ROWS):
    """Chunk an iterator of index tuples into ``(B, n)`` int arrays."""
    chunk_rows = max(1, int(chunk_rows))
    while True:
        chunk = list(islice(iterator, chunk_rows))
        if not chunk:
            return
        yield np.asarray(chunk, dtype=int)


def _iter_subset_chunks(candidate_count: int, k: int, chunk_rows: int = DEFAULT_CHUNK_ROWS):
    """Yield ``(B, k)`` arrays of candidate subsets, ``B <= chunk_rows``."""
    yield from _iter_index_chunks(_iter_center_subsets(candidate_count, k), chunk_rows)


def _build_context(
    dataset: UncertainDataset,
    candidates: np.ndarray,
    store: "ContextStore | None",
) -> CostContext:
    if store is not None:
        return store.get(dataset, candidates)
    return CostContext(dataset, candidates)


# ---------------------------------------------------------------------------
# Incumbent seeding and pruning helpers
# ---------------------------------------------------------------------------


def _greedy_seed_columns(context: CostContext, k: int) -> np.ndarray:
    """``k`` distinct candidate columns from a greedy cover, sorted.

    Greedily minimizes ``max_i min_{c in chosen} E[d(P_i, c)]`` over the
    cached expected-distance matrix — exactly the quantity the subset lower
    bound measures, which is what makes this cheap ``O(k n m)`` opener a
    tight incumbent: subsets whose bound cannot beat the greedy cover's
    achieved cost are pruned from the very first chunk.
    """
    expected = context.expected
    chosen: list[int] = []
    per_point = np.full(context.size, np.inf)
    taken = np.zeros(context.candidate_count, dtype=bool)
    for _ in range(min(k, context.candidate_count)):
        candidate_max = np.minimum(per_point[:, None], expected).max(axis=0)
        candidate_max[taken] = np.inf
        column = int(candidate_max.argmin())
        taken[column] = True
        chosen.append(column)
        per_point = np.minimum(per_point, expected[:, column])
    return np.asarray(sorted(chosen), dtype=int)


def _seed_restricted_incumbent(
    context: CostContext,
    scores: np.ndarray | None,
    policy: AssignmentPolicy,
    k: int,
) -> tuple[float, np.ndarray, np.ndarray]:
    """Exact cost of the greedy seed subset under the call's assignment rule.

    Evaluated through the same kernels the enumeration uses, so the value is
    achieved by a feasible enumeration row — the exactness requirement for
    every incumbent value.  Returns ``(cost, columns, candidate_indices)``:
    the full feasible solution, not just its cost, because a
    ``time_budget`` run whose deadline expires before any chunk completes
    falls back to returning the seed solution (with its certificate).
    """
    columns = _greedy_seed_columns(context, k)
    if scores is not None:
        candidate_indices = context.score_assignments(scores, columns[None, :])[0]
        cost = float(context.assigned_costs(candidate_indices[None, :])[0])
        return cost, columns, candidate_indices
    centers = context.candidates[columns]
    labels = np.asarray(policy(context.dataset, centers), dtype=int)
    candidate_indices = columns[labels]
    return float(context.evaluator.cost(candidate_indices)), columns, candidate_indices


def _seed_unassigned_incumbent(context: CostContext, k: int) -> tuple[float, np.ndarray]:
    """Exact unassigned cost of the greedy seed subset, with the subset."""
    columns = _greedy_seed_columns(context, k)
    return float(context.unassigned_cost(columns)), columns


def _deadline_certificate(best_cost: float, skipped_bounds: list[float]) -> dict:
    """``(cost, lower_bound, gap)`` certificate for a deadline-truncated run.

    ``best_cost`` is achieved by a feasible solution (an upper bound on the
    enumeration optimum ``C*``), and every skipped chunk contributes the
    minimum of its admissible per-row lower bounds, so
    ``lower_bound = min(best_cost, min over skipped chunks)`` satisfies
    ``lower_bound <= C* <= cost`` — rows pruned inside *completed* chunks
    had ``cost > threshold >= best_cost`` by the branch-and-bound exactness
    argument, so they can never undercut it.  Folded chunk bounds are
    relaxed by the same floating-point slack the pruning layer grants
    (:func:`~repro.bounds.lower_bounds.prune_margin`): the bound kernels
    batch differently than the cost kernels, so a mathematically tight
    bound can land an ulp *above* the achievable cost.  A run that
    completes every chunk certifies ``gap = 0``.
    """
    cost = float(best_cost)
    lower_bound = cost
    for bound in skipped_bounds:
        if bound < lower_bound:
            lower_bound = bound
    if skipped_bounds:
        lower_bound -= prune_margin(lower_bound)
    if lower_bound > 0:
        gap = (cost - lower_bound) / lower_bound
    else:
        gap = 0.0 if cost == lower_bound else float("inf")
    return {"cost": cost, "lower_bound": float(lower_bound), "gap": float(gap)}


def _prune_mask(
    bounds: np.ndarray, threshold: float, slack: float = PRUNE_SLACK
) -> np.ndarray | None:
    """Keep-mask for one chunk, or ``None`` when nothing can be pruned.

    A row survives unless its lower bound exceeds the incumbent by more than
    the floating-point slack — so bound-kernel rounding can only reduce
    pruning, never drop a row that ties the optimum.  Float32 contexts pass
    :data:`~repro.bounds.lower_bounds.FLOAT32_SLACK` so the wider cast drift
    is absorbed the same way.
    """
    if not np.isfinite(threshold):
        return None
    keep = bounds <= threshold + prune_margin(threshold, slack)
    if keep.all():
        return None
    return keep


def _two_level_prune(
    context: CostContext,
    subset_rows: np.ndarray,
    threshold: float,
    *,
    objective: str = "assigned",
    slack: float = PRUNE_SLACK,
) -> np.ndarray | None:
    """Staged two-level keep-mask for one chunk of candidate subsets.

    Level 1 (one vectorized gather over the expected matrix, or the E[min]
    kernel for the unassigned objective) prunes the bulk; the tighter — but
    pricier — two-point subset bound
    (:meth:`~repro.cost.context.CostContext.subset_pair_lower_bounds`) then
    runs only on level-1 survivors.  Both levels are admissible, so the
    staged mask prunes a superset of level 1 alone while keeping the
    branch-and-bound exactness argument untouched.
    """
    if not np.isfinite(threshold):
        return None
    level1 = (
        context.subset_assigned_lower_bounds(subset_rows)
        if objective == "assigned"
        else context.subset_unassigned_lower_bounds(subset_rows)
    )
    cut = threshold + prune_margin(threshold, slack)
    keep = level1 <= cut
    survivors = np.flatnonzero(keep)
    if survivors.size:
        pair = context.subset_pair_lower_bounds(subset_rows[survivors])
        keep[survivors[pair > cut]] = False
    if keep.all():
        return None
    return keep


def _chunk_lower_bounds(
    context: CostContext, chunks: list[np.ndarray], objective: str
) -> list[float]:
    """Certificate-grade admissible lower bound per chunk, computed up front.

    One two-level bound pass over every chunk *before* submission gives the
    best-first scheduler its priorities, the gap tracker its outstanding
    bound, and the anytime certificate its fold — all from the same float64
    numbers, so a gap the tracker certifies is the gap the metadata reports.

    The value per chunk is the exact two-level min — ``min_r max(l1_r, p_r)``
    — but the quadratic pair expectation ``p_r`` is evaluated lazily: a row
    whose first-level bound already meets or exceeds the running chunk min
    satisfies ``max(l1_r, p_r) >= l1_r >= best`` and can never lower it, so
    its pair term is skipped.  Two batched rounds suffice for exactness:
    the argmin-``l1`` row of every chunk (one pair call for all chunks),
    then every row with ``l1`` strictly below its chunk's round-one value
    (one more).  Rows never evaluated are dominated by construction, so the
    result matches the eager per-row ``subset_two_level`` pass to the ulp
    (cross-chunk batching may reorder a BLAS reduction; the prune margins
    absorb that) at a fraction of the gather traffic — and is a
    deterministic function of the chunk list, which is what the schedule
    and the certificate replay on.
    """
    if not chunks:
        return []
    level1_kernel = (
        context.subset_assigned_lower_bounds
        if objective == "assigned"
        else context.subset_unassigned_lower_bounds
    )
    sizes = [chunk.shape[0] for chunk in chunks]
    splits = np.cumsum(sizes)[:-1]
    all_rows = np.concatenate(chunks, axis=0)
    level1 = level1_kernel(all_rows)
    level1_per_chunk = np.split(level1, splits)
    offsets = np.concatenate([[0], splits])

    # Round one: the argmin-l1 row of each chunk, pair-evaluated in a batch.
    seed_rows = np.array(
        [offset + int(np.argmin(l1)) for offset, l1 in zip(offsets, level1_per_chunk)]
    )
    seed_pair = context.subset_pair_lower_bounds(all_rows[seed_rows])
    best = np.maximum(level1[seed_rows], seed_pair)

    # Round two: rows that could still lower a chunk's min, in one batch.
    candidate_mask = level1 < np.repeat(best, sizes)
    candidate_mask[seed_rows] = False
    candidates = np.flatnonzero(candidate_mask)
    if candidates.size:
        pair = context.subset_pair_lower_bounds(all_rows[candidates])
        two_level = np.maximum(level1[candidates], pair)
        chunk_of = np.searchsorted(splits, candidates, side="right")
        np.minimum.at(best, chunk_of, two_level)
    return [float(value) for value in best]


def _best_first_order(chunk_bounds: list[float]) -> list[int]:
    """Ascending-bound submission order; ties keep enumeration order.

    Stability matters for reproducibility of the *schedule* (results are
    order-independent by the reduction contract): equal-bound chunks submit
    in their enumeration positions at every worker count.
    """
    return sorted(range(len(chunk_bounds)), key=lambda index: (chunk_bounds[index], index))


def _check_gap_target(gap_target: float | None, prune: bool) -> float | None:
    """Validate the anytime gap target: needs bounds, hence pruning."""
    if gap_target is None:
        return None
    if not prune:
        raise ValidationError(
            "gap_target needs prune=True: the certified gap is measured against "
            "the admissible chunk bounds the pruning layer computes"
        )
    gap_target = float(gap_target)
    if not gap_target >= 0.0:
        raise ValidationError("gap_target must be a non-negative relative gap")
    return gap_target


def _assignment_prefix_bound(
    context: CostContext, columns: np.ndarray, start: int, stop: int
) -> float:
    """Admissible bound on *every* assignment row in shard ``[start, stop)``.

    Rows are base-``kk`` encodings, most-significant digit first, so the
    digits shared by ``start`` and ``stop - 1`` pin the assignments of a
    prefix of points for the whole shard; those points contribute their
    exact expected distances, the free suffix is relaxed to each point's
    subset minimum.  When the bound already exceeds the incumbent the shard
    is skipped without even decoding its rows.
    """
    n = context.size
    kk = int(columns.shape[0])
    expected = context.expected
    subset_min = expected[:, columns].min(axis=1)
    shared = 0
    while shared < n:
        divisor = kk ** (n - shared - 1)
        if start // divisor != (stop - 1) // divisor:
            break
        shared += 1
    bound = float(subset_min[shared:].max()) if shared < n else -np.inf
    if shared > 0:
        exponents = np.arange(n - 1, n - shared - 1, -1, dtype=np.int64)
        digits = (start // kk ** exponents) % kk
        prefix = expected[np.arange(shared), columns[digits]]
        bound = max(bound, float(prefix.max()))
    return bound


# ---------------------------------------------------------------------------
# Chunk tasks (module level so pool workers resolve them by reference)
# ---------------------------------------------------------------------------


def _chunk_best(costs: np.ndarray) -> tuple[int, float]:
    winner = int(np.argmin(costs))
    return winner, float(costs[winner])


def _restricted_chunk_task(payload, subset_rows: np.ndarray):
    """Score one chunk of subsets under a score-matrix assignment rule.

    Returns ``(cost, subset, assignment, pruned, evaluated)``; a fully
    pruned chunk returns ``(inf, None, None, total, 0)``.

    On a float32 context (``REPRO_CONTEXT_DTYPE=float32``) the chunk runs
    the **survivor protocol** instead: prune margins widen by
    :data:`~repro.bounds.lower_bounds.FLOAT32_SLACK`, the incumbent proposal
    is inflated by the same margin (so it stays an upper bound on the
    winner's exact cost), and the task returns
    ``(None, survivor_rows, None, pruned, evaluated)`` — every row whose
    float32 cost lands within the margin of the chunk minimum.  The parent
    re-scores survivors through the exact float64 kernels, which is what
    keeps final results bit-identical to the float64 path.
    """
    context, scores, chunk_rows = payload
    handle = incumbent_module.active()
    total = subset_rows.shape[0]
    slack = FLOAT32_SLACK if context.float32 else PRUNE_SLACK
    if handle is not None:
        keep = _two_level_prune(context, subset_rows, handle.value(), slack=slack)
        if keep is not None:
            subset_rows = subset_rows[keep]
    evaluated = subset_rows.shape[0]
    if evaluated == 0:
        return np.inf, None, None, total, 0
    candidate_index_rows = context.score_assignments(scores, subset_rows)
    costs = context.assigned_costs(candidate_index_rows, chunk_rows=chunk_rows)
    if context.float32:
        floor = float(costs.min())
        margin = prune_margin(floor, FLOAT32_SLACK)
        if handle is not None:
            handle.propose(floor + margin)
        survivors = np.flatnonzero(costs <= floor + margin)
        return None, subset_rows[survivors], None, total - evaluated, evaluated
    winner, cost = _chunk_best(costs)
    if handle is not None:
        handle.propose(cost)
    return cost, subset_rows[winner], candidate_index_rows[winner], total - evaluated, evaluated


def _blackbox_chunk_task(payload, subset_rows: np.ndarray):
    """Score one chunk of subsets under a black-box assignment policy.

    The subset bound holds for *any* assignment into the subset, so pruning
    here skips whole policy evaluations — the expensive part of this path.
    Surviving rows go through **one**
    :meth:`~repro.assignments.base.AssignmentPolicy.chunk_assignments` call
    for the whole chunk (score-matrix rules pay a single
    ``candidate_scores`` evaluation; local-search rules share one evaluator
    across every row) and one batched exact cost kernel, instead of one
    policy call and one single-row sweep per subset.  Returns
    ``(cost, subset, labels, pruned, evaluated)``.
    """
    context, policy = payload
    handle = incumbent_module.active()
    total = subset_rows.shape[0]
    if handle is not None:
        keep = _two_level_prune(context, subset_rows, handle.value())
        if keep is not None:
            subset_rows = subset_rows[keep]
    evaluated = subset_rows.shape[0]
    if evaluated == 0:
        return np.inf, None, None, total, 0
    candidate_index_rows = policy.chunk_assignments(context, subset_rows)
    costs = context.assigned_costs(candidate_index_rows)
    winner, cost = _chunk_best(costs)
    if handle is not None:
        handle.propose(cost)
    columns = subset_rows[winner]
    labels = np.searchsorted(columns, candidate_index_rows[winner])
    return cost, columns, labels, total - evaluated, evaluated


def _ed_scored_chunk_task(payload, subset_rows: np.ndarray):
    """ED-score one chunk of subsets, returning every surviving row.

    Stage 1 of the unrestricted search keeps a full ranking of the
    ``polish_top`` cheapest subsets, so its incumbent is a *top-K
    threshold*: each chunk publishes its own ``top_k``-th smallest evaluated
    cost (an upper bound on the global ``top_k``-th smallest, since the
    chunk's rows are a subset of all rows) and prunes rows whose lower bound
    exceeds the shared threshold — rows that provably cannot enter the
    global top ``top_k`` nor be the stage winner.  Returns
    ``(kept_indices, costs, assignment_rows, pruned)``.
    """
    context, chunk_rows, top_k = payload
    handle = incumbent_module.active()
    total = subset_rows.shape[0]
    kept = None
    if handle is not None:
        keep = _two_level_prune(context, subset_rows, handle.value())
        if keep is not None:
            kept = np.flatnonzero(keep)
            subset_rows = subset_rows[kept]
    if subset_rows.shape[0] == 0:
        empty_assignments = np.empty((0, context.size), dtype=int)
        return np.empty(0, dtype=int), np.empty(0), empty_assignments, total
    candidate_index_rows = context.ed_assignments(subset_rows)
    costs = context.assigned_costs(candidate_index_rows, chunk_rows=chunk_rows)
    if handle is not None and costs.shape[0] >= top_k:
        handle.propose(float(np.partition(costs, top_k - 1)[top_k - 1]))
    if kept is None:
        kept = np.arange(total)
    return kept, costs, candidate_index_rows, total - subset_rows.shape[0]


def _assignment_rows_slice(columns: np.ndarray, n: int, start: int, stop: int) -> np.ndarray:
    """Rows ``[start, stop)`` of the ``kk ** n`` assignment enumeration.

    Decodes the enumeration indices in base ``kk`` (most-significant digit
    first), which reproduces ``itertools.product(range(kk), repeat=n)`` order
    without iterating from the beginning of the stream — what lets shards
    start mid-enumeration in O(chunk) instead of O(stream prefix).
    """
    kk = columns.shape[0]
    indices = np.arange(start, stop, dtype=np.int64)[:, None]
    powers = kk ** np.arange(n - 1, -1, -1, dtype=np.int64)
    return columns[(indices // powers) % kk]


def _exhaustive_chunk_task(payload, item):
    """Best assignment within one shard of one subset's ``kk ** n`` space.

    Two pruning levels: the shared-prefix bound can drop the whole shard
    before any row is decoded, then per-row bounds (one gather + row max
    over the expected matrix) drop individual assignments.  Returns
    ``(cost, assignment_row, pruned, evaluated)``.
    """
    context, n, chunk_rows = payload
    columns, start, stop = item
    handle = incumbent_module.active()
    total = stop - start
    threshold = handle.value() if handle is not None else np.inf
    if handle is not None and np.isfinite(threshold):
        if _assignment_prefix_bound(context, columns, start, stop) > threshold + prune_margin(
            threshold
        ):
            return np.inf, None, total, 0
    assignment_rows = _assignment_rows_slice(columns, n, start, stop)
    if handle is not None and np.isfinite(threshold):
        keep = _prune_mask(context.assignment_lower_bounds(assignment_rows), threshold)
        if keep is not None:
            assignment_rows = assignment_rows[keep]
    evaluated = assignment_rows.shape[0]
    if evaluated == 0:
        return np.inf, None, total, 0
    costs = context.assigned_costs(assignment_rows, chunk_rows=chunk_rows)
    winner, cost = _chunk_best(costs)
    if handle is not None:
        handle.propose(cost)
    return cost, assignment_rows[winner], total - evaluated, evaluated


def _unassigned_chunk_task(payload, subset_rows: np.ndarray):
    """Score one chunk of subsets on the unassigned objective.

    Returns ``(cost, subset, pruned, evaluated)``; on a float32 context,
    ``(None, survivor_rows, pruned, evaluated)`` for exact parent re-scoring.
    """
    context, chunk_rows = payload
    handle = incumbent_module.active()
    total = subset_rows.shape[0]
    slack = FLOAT32_SLACK if context.float32 else PRUNE_SLACK
    if handle is not None:
        keep = _two_level_prune(
            context, subset_rows, handle.value(), objective="unassigned", slack=slack
        )
        if keep is not None:
            subset_rows = subset_rows[keep]
    evaluated = subset_rows.shape[0]
    if evaluated == 0:
        return np.inf, None, total, 0
    costs = context.unassigned_costs(subset_rows, chunk_rows=chunk_rows)
    if context.float32:
        # Survivor protocol (see _restricted_chunk_task): margin-zone rows
        # go back for exact float64 re-scoring in the parent.
        floor = float(costs.min())
        margin = prune_margin(floor, FLOAT32_SLACK)
        if handle is not None:
            handle.propose(floor + margin)
        survivors = np.flatnonzero(costs <= floor + margin)
        return None, subset_rows[survivors], total - evaluated, evaluated
    winner, cost = _chunk_best(costs)
    if handle is not None:
        handle.propose(cost)
    return cost, subset_rows[winner], total - evaluated, evaluated


# ---------------------------------------------------------------------------
# Public solvers
# ---------------------------------------------------------------------------


def brute_force_restricted_assigned(
    dataset: UncertainDataset,
    k: int,
    *,
    assignment: AssignmentPolicy | None = None,
    candidates: np.ndarray | None = None,
    workers: int = 1,
    chunk_rows: int = DEFAULT_CHUNK_ROWS,
    store: "ContextStore | None" = None,
    shm: bool | None = None,
    prune: bool = True,
    time_budget: float | None = None,
    gap_target: float | None = None,
) -> UncertainKCenterResult:
    """Best candidate centers under a fixed restricted assignment rule.

    This is exact (over the candidate set) because the assignment rule is a
    deterministic function of the centers.  ``workers`` shards the subset
    chunks across processes (``1`` = serial, bit-identical either way);
    ``chunk_rows`` bounds both the shard granularity and per-worker batch
    memory; ``store`` memoizes the cost context across repeated calls on the
    same (dataset, candidates) pair.  ``prune=False`` disables the
    branch-and-bound layer (the CLI's ``--no-prune``) — results are
    bit-identical either way, pruning only skips provably losing rows.

    With pruning on, chunks are scheduled **best-first**: every chunk's
    admissible two-level lower bound is computed up front and chunks are
    submitted in ascending-bound order (:func:`_best_first_order`), so the
    cheapest regions of the subset space are searched first and the
    certified optimality gap shrinks as fast as the bounds allow — while
    the final result stays bit-identical to submission order, because the
    reduction walks completed chunks by enumeration index either way.

    ``time_budget`` (seconds) turns the call into an **anytime** solve: the
    enumeration stops when the budget expires and the best solution found so
    far is returned — never worse than the greedy seed, which is evaluated
    up front exactly so an expired budget still yields a feasible answer —
    together with a ``certificate`` metadata entry,
    ``(cost, lower_bound, gap)``, where the lower bound folds the admissible
    chunk bounds of every subset chunk never run
    (:func:`_deadline_certificate`'s exactness argument).  ``None`` (the
    default) never truncates and adds no metadata.

    ``gap_target`` stops the same way on *precision* instead of time: once
    ``(incumbent - min outstanding chunk bound) / lower <= gap_target``
    (:func:`repro.runtime.incumbent.certified_gap`), no further chunks are
    submitted and the result carries the same sound certificate plus a
    ``gap_target_hit`` metadata flag.  Requires ``prune=True``;
    combinable with ``time_budget`` (whichever fires first).  At
    ``gap_target=0`` the stop never fires and results are bit-identical to
    a full run.
    """
    k = check_positive_int(k, name="k")
    policy = assignment or ExpectedDistanceAssignment()
    if candidates is None:
        candidates = default_candidates(dataset)
    candidates = as_point_array(candidates, name="candidates")
    k, k_metadata = _effective_k(k, candidates.shape[0])
    workers = resolve_workers(workers)

    context = _build_context(dataset, candidates, store)
    if isinstance(policy, ExpectedDistanceAssignment):
        scores = context.expected  # cached; bit-identical to the policy's matrix
    else:
        scores = policy.candidate_scores(dataset, candidates)

    seed_solution = (
        _seed_restricted_incumbent(context, scores, policy, k)
        if prune or time_budget is not None
        else None
    )
    seed = seed_solution[0] if prune and seed_solution is not None else None
    gap_target = _check_gap_target(gap_target, prune)
    anytime = time_budget is not None or gap_target is not None
    total_rows = _checked_subset_count(candidates.shape[0], k)
    pruned_rows = 0
    evaluated_rows = 0
    best_cost = np.inf
    best_subset: tuple[int, ...] | None = None
    best_assignment: np.ndarray | None = None
    chunk_list = list(_iter_subset_chunks(candidates.shape[0], k, chunk_rows))
    chunk_bounds = _chunk_lower_bounds(context, chunk_list, "assigned") if prune else None
    outcome: MapOutcome | None = None
    if scores is not None:
        if workers > 1:
            context.evaluator  # build sorted columns once, ship to workers
        if prune:
            assert seed is not None and chunk_bounds is not None
            outcome = parallel_map_ordered(
                _restricted_chunk_task,
                chunk_list,
                payload=(context, scores, chunk_rows),
                workers=workers,
                shm=shm,
                incumbent_seed=seed,
                time_budget=time_budget,
                order=_best_first_order(chunk_bounds),
                chunk_bounds=chunk_bounds,
                gap_target=gap_target,
                float32_ok=True,
            )
            results_by_index = outcome.results
        else:
            results_by_index = dict(
                enumerate(
                    parallel_map(
                        _restricted_chunk_task,
                        chunk_list,
                        payload=(context, scores, chunk_rows),
                        workers=workers,
                        shm=shm,
                        incumbent_seed=None,
                        time_budget=time_budget,
                    )
                )
            )
        best_candidate_indices: np.ndarray | None = None
        for index in sorted(results_by_index):
            cost, subset_row, candidate_indices, pruned, evaluated = results_by_index[index]
            pruned_rows += pruned
            evaluated_rows += evaluated
            if cost is None:
                # Float32 survivors: re-derive assignments and costs through
                # the parent's exact float64 kernels.  np.argmin returns the
                # first minimum, and the survivor rows preserve the chunk's
                # enumeration order, so this is the same first-strict-minimum
                # the float64 chunk task applies.
                if subset_row.shape[0] == 0:
                    continue
                exact_assignments = context.score_assignments(scores, subset_row)
                exact_costs = context.assigned_costs(exact_assignments, chunk_rows=chunk_rows)
                winner = int(np.argmin(exact_costs))
                cost = float(exact_costs[winner])
                subset_row = subset_row[winner]
                candidate_indices = exact_assignments[winner]
            if cost < best_cost:
                best_cost = float(cost)
                best_subset = tuple(int(c) for c in subset_row)
                best_candidate_indices = candidate_indices
        if seed_solution is not None and anytime:
            # Anytime fallback: the seed is a feasible solution evaluated by
            # the same kernels; it can only win when the deadline (or gap
            # stop) skipped every chunk that would have beaten it (a
            # completed run always contains the seed's own row, so the
            # strict < is a no-op there).
            seed_cost, seed_columns, seed_indices = seed_solution
            if best_subset is None or seed_cost < best_cost:
                best_cost = float(seed_cost)
                best_subset = tuple(int(c) for c in seed_columns)
                best_candidate_indices = seed_indices
        assert best_subset is not None and best_candidate_indices is not None
        best_assignment = np.searchsorted(np.asarray(best_subset), best_candidate_indices)
    else:
        # Black-box assignment rule: one batched chunk_assignments call per
        # chunk, with the exact costs still coming from the shared
        # evaluator's cached columns (built once up front and shipped to
        # every worker — without this, every subset would fall back to the
        # context's lazy single-score path and re-derive distances).
        context.evaluator
        if prune:
            assert seed is not None and chunk_bounds is not None
            outcome = parallel_map_ordered(
                _blackbox_chunk_task,
                chunk_list,
                payload=(context, policy),
                workers=workers,
                shm=shm,
                incumbent_seed=seed,
                time_budget=time_budget,
                order=_best_first_order(chunk_bounds),
                chunk_bounds=chunk_bounds,
                gap_target=gap_target,
            )
            results_by_index = outcome.results
        else:
            results_by_index = dict(
                enumerate(
                    parallel_map(
                        _blackbox_chunk_task,
                        chunk_list,
                        payload=(context, policy),
                        workers=workers,
                        shm=shm,
                        incumbent_seed=None,
                        time_budget=time_budget,
                    )
                )
            )
        for index in sorted(results_by_index):
            cost, columns, labels, pruned, evaluated = results_by_index[index]
            pruned_rows += pruned
            evaluated_rows += evaluated
            if cost < best_cost:
                best_cost = float(cost)
                best_subset = tuple(int(c) for c in columns)
                best_assignment = labels
        if seed_solution is not None and anytime:
            seed_cost, seed_columns, seed_indices = seed_solution
            if best_subset is None or seed_cost < best_cost:
                best_cost = float(seed_cost)
                best_subset = tuple(int(c) for c in seed_columns)
                best_assignment = np.searchsorted(seed_columns, seed_indices)
    assert best_subset is not None and best_assignment is not None
    metadata = {
        "algorithm": "brute-force-restricted",
        "candidate_count": int(candidates.shape[0]),
        "workers": int(workers),
        **k_metadata,
        "prune": bool(prune),
        "total_rows": int(total_rows),
        "evaluated_rows": int(evaluated_rows),
        "pruned_rows": int(pruned_rows),
    }
    if anytime:
        skipped = [index for index in range(len(chunk_list)) if index not in results_by_index]
        if time_budget is not None:
            metadata["time_budget"] = float(time_budget)
        metadata["deadline_hit"] = (
            bool(outcome.deadline_hit) if outcome is not None else bool(skipped)
        )
        if gap_target is not None:
            assert outcome is not None
            metadata["gap_target"] = float(gap_target)
            metadata["gap_target_hit"] = bool(outcome.gap_target_hit)
        metadata["chunks_total"] = len(chunk_list)
        metadata["chunks_completed"] = len(results_by_index)
        if chunk_bounds is not None:
            skipped_bounds = [chunk_bounds[index] for index in skipped]
        else:
            skipped_bounds = [
                float(
                    context.subset_two_level_lower_bounds(chunk_list[index]).min()
                )
                for index in skipped
            ]
        metadata["certificate"] = _deadline_certificate(best_cost, skipped_bounds)
    return UncertainKCenterResult(
        centers=candidates[list(best_subset)],
        expected_cost=float(best_cost),
        objective="restricted-assigned",
        assignment=np.asarray(best_assignment, dtype=int),
        assignment_policy=policy.name,
        guaranteed_factor=None,
        metadata=metadata,
    )


def brute_force_unrestricted_assigned(
    dataset: UncertainDataset,
    k: int,
    *,
    candidates: np.ndarray | None = None,
    exhaustive_assignment: bool | None = None,
    polish_top: int = 8,
    workers: int = 1,
    chunk_rows: int = DEFAULT_CHUNK_ROWS,
    store: "ContextStore | None" = None,
    shm: bool | None = None,
    prune: bool = True,
) -> UncertainKCenterResult:
    """Best-known candidate centers together with the best assignment.

    Every ``C(m, k)`` candidate subset is scored with the expected-distance
    assignment (one batched exact cost evaluation per chunk of subsets).  The
    ``polish_top`` cheapest subsets are then re-optimised, either by
    exhaustive assignment enumeration (exact for those subsets; enabled
    automatically when ``polish_top * k ** n`` is small, or forced with
    ``exhaustive_assignment=True``) or by single-move local search through
    the round-amortized sweep.  Both enumeration stages shard their chunks
    across ``workers`` processes with serial-identical reductions.

    With pruning on (the default) the subset stage runs under a shared
    top-``polish_top`` threshold (rows that provably cannot enter the
    polishing pool nor win the stage are skipped — the pool membership and
    order are preserved exactly) and the exhaustive stage under the stage-1
    winner as incumbent with per-row and shared-prefix bounds.  Both stages
    submit their chunks best-first (ascending admissible bound), and the
    local-search polish shares the same incumbent machinery: subsets whose
    admissible bound exceeds the live incumbent skip the polish entirely.

    For an exact optimum over the candidate set pass
    ``polish_top >= C(m, k)`` together with ``exhaustive_assignment=True``
    (micro instances only).
    """
    k = check_positive_int(k, name="k")
    if candidates is None:
        candidates = default_candidates(dataset)
    candidates = as_point_array(candidates, name="candidates")
    k, k_metadata = _effective_k(k, candidates.shape[0])
    n = dataset.size
    workers = resolve_workers(workers)

    context = _build_context(dataset, candidates, store)
    if workers > 1 or prune:
        context.expected  # pin before shipping: workers share, never rebuild
        context.evaluator
    top_k = max(1, int(polish_top))
    scored: list[tuple[float, tuple[int, ...], np.ndarray]] = []
    subset_chunks = list(_iter_subset_chunks(candidates.shape[0], k, chunk_rows))
    subset_total = sum(chunk.shape[0] for chunk in subset_chunks)
    if prune:
        # Best-first submission tightens the shared top-K threshold early:
        # low-bound chunks hold the cheap subsets, so the threshold other
        # shards prune against drops within the first few completions.
        stage_bounds = _chunk_lower_bounds(context, subset_chunks, "assigned")
        stage_outcome = parallel_map_ordered(
            _ed_scored_chunk_task,
            subset_chunks,
            payload=(context, chunk_rows, top_k),
            workers=workers,
            shm=shm,
            incumbent_seed=np.inf,
            order=_best_first_order(stage_bounds),
            chunk_bounds=stage_bounds,
        )
        chunk_results = [stage_outcome.results[index] for index in range(len(subset_chunks))]
    else:
        chunk_results = parallel_map(
            _ed_scored_chunk_task,
            subset_chunks,
            payload=(context, chunk_rows, top_k),
            workers=workers,
            shm=shm,
            incumbent_seed=None,
        )
    subset_pruned = 0
    for subset_rows, (kept, costs, candidate_index_rows, pruned) in zip(
        subset_chunks, chunk_results
    ):
        subset_pruned += pruned
        rows = subset_rows[kept]
        scored.extend(
            (float(cost), tuple(int(c) for c in subset), candidate_indices)
            for cost, subset, candidate_indices in zip(costs, rows, candidate_index_rows)
        )
    scored.sort(key=lambda entry: entry[0])

    polish_top = max(1, min(polish_top, len(scored)))
    if exhaustive_assignment is None:
        exhaustive_assignment = polish_top * (k**n) <= MAX_ASSIGNMENT_ENUMERATION

    best_cost, best_subset, best_candidate_indices = scored[0]
    assignment_pruned = 0
    assignment_evaluated = 0
    if exhaustive_assignment:
        items = [
            (np.asarray(subset, dtype=int), start, stop)
            for _, subset, _ in scored[:polish_top]
            for start, stop in iter_chunk_bounds(k**n, chunk_rows)
        ]
        if prune:
            # The same shared-prefix bound the shards prune with, computed
            # up front per item, doubles as the best-first priority.
            item_bounds = [
                _assignment_prefix_bound(context, columns, start, stop)
                for columns, start, stop in items
            ]
            exhaustive_outcome = parallel_map_ordered(
                _exhaustive_chunk_task,
                items,
                payload=(context, n, chunk_rows),
                workers=workers,
                shm=shm,
                incumbent_seed=best_cost,
                order=_best_first_order(item_bounds),
                chunk_bounds=item_bounds,
            )
            results = [exhaustive_outcome.results[index] for index in range(len(items))]
        else:
            results = parallel_map(
                _exhaustive_chunk_task,
                items,
                payload=(context, n, chunk_rows),
                workers=workers,
                shm=shm,
                incumbent_seed=None,
            )
        for (columns, _, _), (cost, assignment_row, pruned, evaluated) in zip(items, results):
            assignment_pruned += pruned
            assignment_evaluated += evaluated
            if cost < best_cost:
                best_cost = float(cost)
                best_subset = tuple(int(c) for c in columns)
                best_candidate_indices = assignment_row
    else:
        # The polish stage shares the incumbent machinery with the
        # enumeration stages: polishing a subset cannot beat its admissible
        # lower bound, so candidates whose bound exceeds the live incumbent
        # are skipped without paying the local search — and since a skipped
        # subset's polished cost could never win the strict-< reduction, the
        # result is identical to polishing all of them.
        with incumbent_module.serial_incumbent(float(best_cost)) as handle:
            for cost, subset, _ in scored[:polish_top]:
                columns = np.asarray(subset, dtype=int)
                if prune:
                    threshold = handle.value()
                    bound = float(
                        context.subset_two_level_lower_bounds(columns[None, :])[0]
                    )
                    if bound > threshold + prune_margin(threshold):
                        continue
                candidate_indices = context.ed_assignment(subset)
                candidate_indices = _single_move_polish(context, columns, candidate_indices)
                candidate_cost = context.assigned_cost(candidate_indices)
                handle.propose(float(candidate_cost))
                if candidate_cost < best_cost:
                    best_cost, best_subset, best_candidate_indices = candidate_cost, subset, candidate_indices

    columns = np.asarray(best_subset, dtype=int)
    labels = np.searchsorted(columns, best_candidate_indices)
    return UncertainKCenterResult(
        centers=candidates[list(best_subset)],
        expected_cost=float(best_cost),
        objective="unrestricted-assigned",
        assignment=np.asarray(labels, dtype=int),
        assignment_policy="exhaustive" if exhaustive_assignment else "optimal-local",
        guaranteed_factor=None,
        metadata={
            "algorithm": "brute-force-unrestricted",
            "candidate_count": int(candidates.shape[0]),
            "exhaustive_assignment": bool(exhaustive_assignment),
            "polished_subsets": polish_top,
            "workers": int(workers),
            **k_metadata,
            "prune": bool(prune),
            "total_rows": int(subset_total + (polish_top * (k**n) if exhaustive_assignment else 0)),
            "evaluated_rows": int(subset_total - subset_pruned + assignment_evaluated),
            "pruned_rows": int(subset_pruned + assignment_pruned),
            "subset_pruned_rows": int(subset_pruned),
            "assignment_pruned_rows": int(assignment_pruned),
        },
    )


def _single_move_polish(
    context: CostContext,
    columns: np.ndarray,
    candidate_indices: np.ndarray,
    *,
    max_rounds: int = 10,
) -> np.ndarray:
    """Single-point reassignment local search on the exact assigned cost.

    One :class:`~repro.cost.expected.LocalSearchSweep` carries the whole
    search: each point's rest profile is divided out of the cached union
    sweep (not re-sorted per point) and accepted moves are spliced in
    incrementally.
    """
    evaluator = context.evaluator
    sweep = evaluator.local_search_sweep(candidate_indices)
    best_cost = sweep.cost()
    n = candidate_indices.shape[0]
    for _ in range(max_rounds):
        improved = False
        for point_index in range(n):
            original = sweep.column_of(point_index)
            profile = sweep.rest_profile(point_index)
            costs = evaluator.move_costs(profile, columns)
            winner = int(np.argmin(costs))
            tolerance = 1e-12 * max(1.0, abs(best_cost))
            if int(columns[winner]) != original and costs[winner] < best_cost - tolerance:
                sweep.apply_move(point_index, int(columns[winner]))
                best_cost = float(costs[winner])
                improved = True
        if not improved:
            break
    return sweep.columns


def brute_force_unassigned(
    dataset: UncertainDataset,
    k: int,
    *,
    candidates: np.ndarray | None = None,
    workers: int = 1,
    chunk_rows: int = DEFAULT_CHUNK_ROWS,
    store: "ContextStore | None" = None,
    shm: bool | None = None,
    prune: bool = True,
    time_budget: float | None = None,
    gap_target: float | None = None,
) -> UncertainKCenterResult:
    """Best candidate centers for the unassigned expected cost (exact over the set).

    ``time_budget`` and ``gap_target`` make the call anytime, exactly like
    :func:`brute_force_restricted_assigned`: with pruning on, chunks run
    best-first in ascending two-level-bound order, and a ``certificate``
    metadata entry reports ``(cost, lower_bound, gap)`` with the lower
    bound folded over the E[min]-based chunk bounds of every skipped chunk;
    an expired budget still returns the greedy seed subset.
    """
    k = check_positive_int(k, name="k")
    if candidates is None:
        candidates = default_candidates(dataset)
    candidates = as_point_array(candidates, name="candidates")
    k, k_metadata = _effective_k(k, candidates.shape[0])
    workers = resolve_workers(workers)

    context = _build_context(dataset, candidates, store)
    if workers > 1:
        context._rank_merge_tables()  # built once, published to every worker
    seed_solution = (
        _seed_unassigned_incumbent(context, k) if prune or time_budget is not None else None
    )
    seed = seed_solution[0] if prune and seed_solution is not None else None
    gap_target = _check_gap_target(gap_target, prune)
    anytime = time_budget is not None or gap_target is not None
    total_rows = _checked_subset_count(candidates.shape[0], k)
    pruned_rows = 0
    evaluated_rows = 0
    best_cost = np.inf
    best_subset: tuple[int, ...] | None = None
    chunk_list = list(_iter_subset_chunks(candidates.shape[0], k, chunk_rows))
    chunk_bounds = _chunk_lower_bounds(context, chunk_list, "unassigned") if prune else None
    outcome: MapOutcome | None = None
    if prune:
        assert seed is not None and chunk_bounds is not None
        outcome = parallel_map_ordered(
            _unassigned_chunk_task,
            chunk_list,
            payload=(context, chunk_rows),
            workers=workers,
            shm=shm,
            incumbent_seed=seed,
            time_budget=time_budget,
            order=_best_first_order(chunk_bounds),
            chunk_bounds=chunk_bounds,
            gap_target=gap_target,
            float32_ok=True,
        )
        results_by_index = outcome.results
    else:
        results_by_index = dict(
            enumerate(
                parallel_map(
                    _unassigned_chunk_task,
                    chunk_list,
                    payload=(context, chunk_rows),
                    workers=workers,
                    shm=shm,
                    incumbent_seed=None,
                    time_budget=time_budget,
                )
            )
        )
    for index in sorted(results_by_index):
        cost, subset_row, pruned, evaluated = results_by_index[index]
        pruned_rows += pruned
        evaluated_rows += evaluated
        if cost is None:
            # Float32 survivors: exact re-scoring, first-minimum tie rule
            # (see the restricted solver's reduction).
            if subset_row.shape[0] == 0:
                continue
            exact_costs = context.unassigned_costs(subset_row, chunk_rows=chunk_rows)
            winner = int(np.argmin(exact_costs))
            cost = float(exact_costs[winner])
            subset_row = subset_row[winner]
        if cost < best_cost:
            best_cost = float(cost)
            best_subset = tuple(int(c) for c in subset_row)
    if seed_solution is not None and anytime:
        seed_cost, seed_columns = seed_solution
        if best_subset is None or seed_cost < best_cost:
            best_cost = float(seed_cost)
            best_subset = tuple(int(c) for c in seed_columns)
    assert best_subset is not None
    metadata = {
        "algorithm": "brute-force-unassigned",
        "candidate_count": int(candidates.shape[0]),
        "workers": int(workers),
        **k_metadata,
        "prune": bool(prune),
        "total_rows": int(total_rows),
        "evaluated_rows": int(evaluated_rows),
        "pruned_rows": int(pruned_rows),
    }
    if anytime:
        skipped = [index for index in range(len(chunk_list)) if index not in results_by_index]
        if time_budget is not None:
            metadata["time_budget"] = float(time_budget)
        metadata["deadline_hit"] = (
            bool(outcome.deadline_hit) if outcome is not None else bool(skipped)
        )
        if gap_target is not None:
            assert outcome is not None
            metadata["gap_target"] = float(gap_target)
            metadata["gap_target_hit"] = bool(outcome.gap_target_hit)
        metadata["chunks_total"] = len(chunk_list)
        metadata["chunks_completed"] = len(results_by_index)
        if chunk_bounds is not None:
            skipped_bounds = [chunk_bounds[index] for index in skipped]
        else:
            skipped_bounds = [
                float(
                    context.subset_two_level_lower_bounds(
                        chunk_list[index], objective="unassigned"
                    ).min()
                )
                for index in skipped
            ]
        metadata["certificate"] = _deadline_certificate(best_cost, skipped_bounds)
    return UncertainKCenterResult(
        centers=candidates[list(best_subset)],
        expected_cost=float(best_cost),
        objective="unassigned",
        guaranteed_factor=None,
        metadata=metadata,
    )
