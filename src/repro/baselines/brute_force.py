"""Brute-force reference solvers for small uncertain instances.

These produce the "best known" solutions the experiments compare against on
micro instances (and the *exact* optimum when centers are restricted to a
finite candidate set, e.g. in finite metric spaces, and assignments are
enumerated exhaustively).

* :func:`brute_force_restricted_assigned` — best centers from a candidate
  set for a fixed restricted assignment rule.
* :func:`brute_force_unrestricted_assigned` — best centers from a candidate
  set together with the best assignment (exhaustive over the ``k^n``
  assignments when affordable, local-search polish otherwise).
* :func:`brute_force_unassigned` — best centers from a candidate set for the
  unassigned objective.

All of them enumerate ``C(m, k)`` candidate subsets, so they are exponential
in ``k``; a safety cap protects against accidental misuse.  Distance supports
are precomputed once per call so the per-subset work is a single exact
``E[max]`` evaluation.
"""

from __future__ import annotations

from itertools import combinations, product
from math import comb

import numpy as np

from .._validation import as_point_array, check_positive_int
from ..algorithms.result import UncertainKCenterResult
from ..assignments.base import AssignmentPolicy
from ..assignments.policies import ExpectedDistanceAssignment
from ..cost.expected import expected_cost_assigned, expected_max_of_independent
from ..exceptions import ValidationError
from ..uncertain.dataset import UncertainDataset

#: Safety cap on the number of candidate subsets a brute-force call may try.
MAX_CENTER_SUBSETS = 300_000
#: Cap on exhaustive assignment enumeration work (subsets * k ** n).
MAX_ASSIGNMENT_ENUMERATION = 250_000


def default_candidates(dataset: UncertainDataset) -> np.ndarray:
    """Reasonable candidate centers: all locations (+ expected points)."""
    if dataset.metric.supports_expected_point:
        return np.vstack([dataset.all_locations(), dataset.expected_points()])
    return dataset.metric.candidate_centers(dataset.all_locations())


class _PrecomputedInstance:
    """Distance supports and expected distances for a fixed candidate set.

    ``supports[i]`` is the ``(z_i, m)`` matrix of distances from point ``i``'s
    locations to every candidate; ``expected`` is the ``(n, m)`` matrix of
    expected distances.  With these in hand, evaluating the exact expected
    cost of any (subset, assignment) pair needs no further metric calls.
    """

    def __init__(self, dataset: UncertainDataset, candidates: np.ndarray):
        metric = dataset.metric
        self.dataset = dataset
        self.candidates = candidates
        self.supports = [metric.pairwise(point.locations, candidates) for point in dataset.points]
        self.probabilities = [point.probabilities for point in dataset.points]
        self.expected = np.vstack(
            [point.probabilities @ support for point, support in zip(dataset.points, self.supports)]
        )

    def assigned_cost(self, candidate_indices: np.ndarray) -> float:
        """Exact assigned cost when point ``i`` goes to ``candidate_indices[i]``."""
        values = [support[:, candidate_indices[i]] for i, support in enumerate(self.supports)]
        return expected_max_of_independent(values, self.probabilities)

    def unassigned_cost(self, subset: tuple[int, ...]) -> float:
        """Exact unassigned cost of the candidate subset."""
        columns = list(subset)
        values = [support[:, columns].min(axis=1) for support in self.supports]
        return expected_max_of_independent(values, self.probabilities)

    def ed_assignment(self, subset: tuple[int, ...]) -> np.ndarray:
        """Expected-distance assignment restricted to the subset's candidates."""
        columns = np.asarray(subset, dtype=int)
        local = self.expected[:, columns].argmin(axis=1)
        return columns[local]


def _iter_center_subsets(candidate_count: int, k: int):
    if comb(candidate_count, k) > MAX_CENTER_SUBSETS:
        raise ValidationError(
            f"brute force would enumerate C({candidate_count}, {k}) center subsets; "
            f"cap is {MAX_CENTER_SUBSETS}"
        )
    yield from combinations(range(candidate_count), k)


def brute_force_restricted_assigned(
    dataset: UncertainDataset,
    k: int,
    *,
    assignment: AssignmentPolicy | None = None,
    candidates: np.ndarray | None = None,
) -> UncertainKCenterResult:
    """Best candidate centers under a fixed restricted assignment rule.

    This is exact (over the candidate set) because the assignment rule is a
    deterministic function of the centers.
    """
    k = check_positive_int(k, name="k")
    policy = assignment or ExpectedDistanceAssignment()
    if candidates is None:
        candidates = default_candidates(dataset)
    candidates = as_point_array(candidates, name="candidates")
    k = min(k, candidates.shape[0])

    instance = _PrecomputedInstance(dataset, candidates)
    use_ed_shortcut = isinstance(policy, ExpectedDistanceAssignment)

    best_cost = np.inf
    best_subset: tuple[int, ...] | None = None
    best_assignment: np.ndarray | None = None
    for subset in _iter_center_subsets(candidates.shape[0], k):
        if use_ed_shortcut:
            candidate_indices = instance.ed_assignment(subset)
            cost = instance.assigned_cost(candidate_indices)
            labels = np.searchsorted(np.asarray(subset), candidate_indices)
        else:
            centers = candidates[list(subset)]
            labels = policy(dataset, centers)
            cost = expected_cost_assigned(dataset, centers, labels)
        if cost < best_cost:
            best_cost, best_subset, best_assignment = cost, subset, np.asarray(labels, dtype=int)
    assert best_subset is not None and best_assignment is not None
    return UncertainKCenterResult(
        centers=candidates[list(best_subset)],
        expected_cost=float(best_cost),
        objective="restricted-assigned",
        assignment=best_assignment,
        assignment_policy=policy.name,
        guaranteed_factor=None,
        metadata={"algorithm": "brute-force-restricted", "candidate_count": int(candidates.shape[0])},
    )


def brute_force_unrestricted_assigned(
    dataset: UncertainDataset,
    k: int,
    *,
    candidates: np.ndarray | None = None,
    exhaustive_assignment: bool | None = None,
    polish_top: int = 8,
) -> UncertainKCenterResult:
    """Best-known candidate centers together with the best assignment.

    Every ``C(m, k)`` candidate subset is scored with the expected-distance
    assignment (one exact cost evaluation per subset).  The ``polish_top``
    cheapest subsets are then re-optimised, either by exhaustive assignment
    enumeration (exact for those subsets; enabled automatically when
    ``polish_top * k ** n`` is small, or forced with
    ``exhaustive_assignment=True``) or by single-move local search.

    For an exact optimum over the candidate set pass
    ``polish_top >= C(m, k)`` together with ``exhaustive_assignment=True``
    (micro instances only).
    """
    k = check_positive_int(k, name="k")
    if candidates is None:
        candidates = default_candidates(dataset)
    candidates = as_point_array(candidates, name="candidates")
    k = min(k, candidates.shape[0])
    n = dataset.size

    instance = _PrecomputedInstance(dataset, candidates)
    scored: list[tuple[float, tuple[int, ...], np.ndarray]] = []
    for subset in _iter_center_subsets(candidates.shape[0], k):
        candidate_indices = instance.ed_assignment(subset)
        cost = instance.assigned_cost(candidate_indices)
        scored.append((cost, subset, candidate_indices))
    scored.sort(key=lambda entry: entry[0])

    polish_top = max(1, min(polish_top, len(scored)))
    if exhaustive_assignment is None:
        exhaustive_assignment = polish_top * (k**n) <= MAX_ASSIGNMENT_ENUMERATION

    best_cost, best_subset, best_candidate_indices = scored[0]
    for cost, subset, _ in scored[:polish_top]:
        columns = np.asarray(subset, dtype=int)
        if exhaustive_assignment:
            for assignment_choice in product(range(len(subset)), repeat=n):
                candidate_indices = columns[np.asarray(assignment_choice, dtype=int)]
                candidate_cost = instance.assigned_cost(candidate_indices)
                if candidate_cost < best_cost:
                    best_cost, best_subset, best_candidate_indices = candidate_cost, subset, candidate_indices
        else:
            candidate_indices = instance.ed_assignment(subset)
            candidate_indices = _single_move_polish(instance, columns, candidate_indices)
            candidate_cost = instance.assigned_cost(candidate_indices)
            if candidate_cost < best_cost:
                best_cost, best_subset, best_candidate_indices = candidate_cost, subset, candidate_indices

    columns = np.asarray(best_subset, dtype=int)
    labels = np.searchsorted(columns, best_candidate_indices)
    return UncertainKCenterResult(
        centers=candidates[list(best_subset)],
        expected_cost=float(best_cost),
        objective="unrestricted-assigned",
        assignment=np.asarray(labels, dtype=int),
        assignment_policy="exhaustive" if exhaustive_assignment else "optimal-local",
        guaranteed_factor=None,
        metadata={
            "algorithm": "brute-force-unrestricted",
            "candidate_count": int(candidates.shape[0]),
            "exhaustive_assignment": bool(exhaustive_assignment),
            "polished_subsets": polish_top,
        },
    )


def _single_move_polish(
    instance: _PrecomputedInstance,
    columns: np.ndarray,
    candidate_indices: np.ndarray,
    *,
    max_rounds: int = 10,
) -> np.ndarray:
    """Single-point reassignment local search on the exact assigned cost."""
    current = candidate_indices.copy()
    best_cost = instance.assigned_cost(current)
    n = current.shape[0]
    for _ in range(max_rounds):
        improved = False
        for point_index in range(n):
            original = current[point_index]
            for column in columns:
                if column == original:
                    continue
                current[point_index] = column
                cost = instance.assigned_cost(current)
                if cost < best_cost - 1e-15:
                    best_cost = cost
                    original = column
                    improved = True
            current[point_index] = original
        if not improved:
            break
    return current


def brute_force_unassigned(
    dataset: UncertainDataset,
    k: int,
    *,
    candidates: np.ndarray | None = None,
) -> UncertainKCenterResult:
    """Best candidate centers for the unassigned expected cost (exact over the set)."""
    k = check_positive_int(k, name="k")
    if candidates is None:
        candidates = default_candidates(dataset)
    candidates = as_point_array(candidates, name="candidates")
    k = min(k, candidates.shape[0])

    instance = _PrecomputedInstance(dataset, candidates)
    best_cost = np.inf
    best_subset: tuple[int, ...] | None = None
    for subset in _iter_center_subsets(candidates.shape[0], k):
        cost = instance.unassigned_cost(subset)
        if cost < best_cost:
            best_cost, best_subset = cost, subset
    assert best_subset is not None
    return UncertainKCenterResult(
        centers=candidates[list(best_subset)],
        expected_cost=float(best_cost),
        objective="unassigned",
        guaranteed_factor=None,
        metadata={"algorithm": "brute-force-unassigned", "candidate_count": int(candidates.shape[0])},
    )
