"""Brute-force reference solvers for small uncertain instances.

These produce the "best known" solutions the experiments compare against on
micro instances (and the *exact* optimum when centers are restricted to a
finite candidate set, e.g. in finite metric spaces, and assignments are
enumerated exhaustively).

* :func:`brute_force_restricted_assigned` — best centers from a candidate
  set for a fixed restricted assignment rule.
* :func:`brute_force_unrestricted_assigned` — best centers from a candidate
  set together with the best assignment (exhaustive over the ``k^n``
  assignments when affordable, local-search polish otherwise).
* :func:`brute_force_unassigned` — best centers from a candidate set for the
  unassigned objective.

All of them enumerate ``C(m, k)`` candidate subsets, so they are exponential
in ``k``; a safety cap protects against accidental misuse.  Distance supports
are precomputed once per call into an :class:`AssignedCostEvaluator`, and the
enumerated subsets/assignments are scored through its *batch* kernel in
chunks, so the per-subset work is a slice of one vectorized exact ``E[max]``
sweep rather than a Python-level loop.

When ``k`` exceeds the number of available candidates the solvers run with
the largest feasible ``k`` and record both ``requested_k`` and
``effective_k`` in the result metadata instead of silently solving a
different problem.
"""

from __future__ import annotations

from itertools import combinations, islice, product
from math import comb

import numpy as np

from .._validation import as_point_array, check_positive_int
from ..algorithms.result import UncertainKCenterResult
from ..assignments.base import AssignmentPolicy
from ..assignments.policies import ExpectedDistanceAssignment
from ..cost.expected import (
    AssignedCostEvaluator,
    expected_cost_assigned,
    expected_max_batch_values,
    expected_max_of_independent,
)
from ..exceptions import ValidationError
from ..uncertain.dataset import UncertainDataset

#: Safety cap on the number of candidate subsets a brute-force call may try.
MAX_CENTER_SUBSETS = 300_000
#: Cap on exhaustive assignment enumeration work (subsets * k ** n).
MAX_ASSIGNMENT_ENUMERATION = 250_000
#: Rows per chunk pushed through the batch E[max] kernel.
BATCH_CHUNK_ROWS = 2048


def default_candidates(dataset: UncertainDataset) -> np.ndarray:
    """Reasonable candidate centers: all locations (+ expected points)."""
    if dataset.metric.supports_expected_point:
        return np.vstack([dataset.all_locations(), dataset.expected_points()])
    return dataset.metric.candidate_centers(dataset.all_locations())


def _effective_k(k: int, candidate_count: int) -> tuple[int, dict[str, int]]:
    """Clamp ``k`` to the candidate count, recording the clamp explicitly."""
    effective = min(k, candidate_count)
    metadata = {"requested_k": int(k), "effective_k": int(effective)}
    return effective, metadata


class _PrecomputedInstance:
    """Distance supports and expected distances for a fixed candidate set.

    ``supports[i]`` is the ``(z_i, m)`` matrix of distances from point ``i``'s
    locations to every candidate; ``expected`` is the ``(n, m)`` matrix of
    expected distances.  The supports are loaded into an
    :class:`AssignedCostEvaluator` once, so evaluating the exact expected
    cost of any (subset, assignment) pair — or a whole batch of them — needs
    no further metric calls and no per-call re-sorting of candidate columns.
    """

    def __init__(self, dataset: UncertainDataset, candidates: np.ndarray):
        metric = dataset.metric
        self.dataset = dataset
        self.candidates = candidates
        self.supports = [metric.pairwise(point.locations, candidates) for point in dataset.points]
        self.probabilities = [point.probabilities for point in dataset.points]
        self.expected = np.vstack(
            [point.probabilities @ support for point, support in zip(dataset.points, self.supports)]
        )
        self._evaluator: AssignedCostEvaluator | None = None

    @property
    def evaluator(self) -> AssignedCostEvaluator:
        """Lazily built so policy paths that never score assignments in batch
        (e.g. the non-ED restricted search) skip the per-column sorts."""
        if self._evaluator is None:
            self._evaluator = AssignedCostEvaluator(self.supports, self.probabilities)
        return self._evaluator

    def assigned_cost(self, candidate_indices: np.ndarray) -> float:
        """Exact assigned cost when point ``i`` goes to ``candidate_indices[i]``."""
        return self.evaluator.cost(np.asarray(candidate_indices, dtype=int))

    def assigned_costs(self, candidate_index_rows: np.ndarray) -> np.ndarray:
        """Exact assigned costs for a ``(B, n)`` batch of assignments."""
        return self.evaluator.costs(candidate_index_rows, chunk_rows=BATCH_CHUNK_ROWS)

    def unassigned_cost(self, subset: tuple[int, ...]) -> float:
        """Exact unassigned cost of the candidate subset."""
        columns = list(subset)
        values = [support[:, columns].min(axis=1) for support in self.supports]
        return expected_max_of_independent(values, self.probabilities)

    def unassigned_costs(self, subset_rows: np.ndarray) -> np.ndarray:
        """Exact unassigned costs for a ``(B, kk)`` batch of subsets."""
        value_rows = [
            support[:, subset_rows].min(axis=2).T  # (z_i, B, kk) -> (B, z_i)
            for support in self.supports
        ]
        return expected_max_batch_values(value_rows, self.probabilities)

    def ed_assignment(self, subset: tuple[int, ...]) -> np.ndarray:
        """Expected-distance assignment restricted to the subset's candidates."""
        columns = np.asarray(subset, dtype=int)
        local = self.expected[:, columns].argmin(axis=1)
        return columns[local]

    def ed_assignments(self, subset_rows: np.ndarray) -> np.ndarray:
        """Expected-distance assignments for a ``(B, kk)`` batch of subsets."""
        local = self.expected[:, subset_rows].argmin(axis=2)  # (n, B)
        return np.take_along_axis(subset_rows, local.T, axis=1)  # (B, n)


def _iter_center_subsets(candidate_count: int, k: int):
    if comb(candidate_count, k) > MAX_CENTER_SUBSETS:
        raise ValidationError(
            f"brute force would enumerate C({candidate_count}, {k}) center subsets; "
            f"cap is {MAX_CENTER_SUBSETS}"
        )
    yield from combinations(range(candidate_count), k)


def _iter_index_chunks(iterator, chunk_rows: int = BATCH_CHUNK_ROWS):
    """Chunk an iterator of index tuples into ``(B, n)`` int arrays."""
    while True:
        chunk = list(islice(iterator, chunk_rows))
        if not chunk:
            return
        yield np.asarray(chunk, dtype=int)


def _iter_subset_chunks(candidate_count: int, k: int, chunk_rows: int = BATCH_CHUNK_ROWS):
    """Yield ``(B, k)`` arrays of candidate subsets, ``B <= chunk_rows``."""
    yield from _iter_index_chunks(_iter_center_subsets(candidate_count, k), chunk_rows)


def brute_force_restricted_assigned(
    dataset: UncertainDataset,
    k: int,
    *,
    assignment: AssignmentPolicy | None = None,
    candidates: np.ndarray | None = None,
) -> UncertainKCenterResult:
    """Best candidate centers under a fixed restricted assignment rule.

    This is exact (over the candidate set) because the assignment rule is a
    deterministic function of the centers.
    """
    k = check_positive_int(k, name="k")
    policy = assignment or ExpectedDistanceAssignment()
    if candidates is None:
        candidates = default_candidates(dataset)
    candidates = as_point_array(candidates, name="candidates")
    k, k_metadata = _effective_k(k, candidates.shape[0])

    instance = _PrecomputedInstance(dataset, candidates)
    use_ed_shortcut = isinstance(policy, ExpectedDistanceAssignment)

    best_cost = np.inf
    best_subset: tuple[int, ...] | None = None
    best_assignment: np.ndarray | None = None
    if use_ed_shortcut:
        best_candidate_indices: np.ndarray | None = None
        for subset_rows in _iter_subset_chunks(candidates.shape[0], k):
            candidate_index_rows = instance.ed_assignments(subset_rows)
            costs = instance.assigned_costs(candidate_index_rows)
            winner = int(np.argmin(costs))
            if costs[winner] < best_cost:
                best_cost = float(costs[winner])
                best_subset = tuple(int(c) for c in subset_rows[winner])
                best_candidate_indices = candidate_index_rows[winner]
        assert best_subset is not None and best_candidate_indices is not None
        best_assignment = np.searchsorted(np.asarray(best_subset), best_candidate_indices)
    else:
        for subset in _iter_center_subsets(candidates.shape[0], k):
            centers = candidates[list(subset)]
            labels = policy(dataset, centers)
            cost = expected_cost_assigned(dataset, centers, labels)
            if cost < best_cost:
                best_cost, best_subset, best_assignment = cost, subset, np.asarray(labels, dtype=int)
    assert best_subset is not None and best_assignment is not None
    return UncertainKCenterResult(
        centers=candidates[list(best_subset)],
        expected_cost=float(best_cost),
        objective="restricted-assigned",
        assignment=np.asarray(best_assignment, dtype=int),
        assignment_policy=policy.name,
        guaranteed_factor=None,
        metadata={
            "algorithm": "brute-force-restricted",
            "candidate_count": int(candidates.shape[0]),
            **k_metadata,
        },
    )


def _iter_assignment_chunks(columns: np.ndarray, n: int, chunk_rows: int = BATCH_CHUNK_ROWS):
    """Yield ``(B, n)`` chunks of all ``kk ** n`` assignments over ``columns``."""
    iterator = product(range(columns.shape[0]), repeat=n)
    for choices in _iter_index_chunks(iterator, chunk_rows):
        yield columns[choices]


def brute_force_unrestricted_assigned(
    dataset: UncertainDataset,
    k: int,
    *,
    candidates: np.ndarray | None = None,
    exhaustive_assignment: bool | None = None,
    polish_top: int = 8,
) -> UncertainKCenterResult:
    """Best-known candidate centers together with the best assignment.

    Every ``C(m, k)`` candidate subset is scored with the expected-distance
    assignment (one batched exact cost evaluation per chunk of subsets).  The
    ``polish_top`` cheapest subsets are then re-optimised, either by
    exhaustive assignment enumeration (exact for those subsets; enabled
    automatically when ``polish_top * k ** n`` is small, or forced with
    ``exhaustive_assignment=True``) or by single-move local search through
    the incremental evaluator.

    For an exact optimum over the candidate set pass
    ``polish_top >= C(m, k)`` together with ``exhaustive_assignment=True``
    (micro instances only).
    """
    k = check_positive_int(k, name="k")
    if candidates is None:
        candidates = default_candidates(dataset)
    candidates = as_point_array(candidates, name="candidates")
    k, k_metadata = _effective_k(k, candidates.shape[0])
    n = dataset.size

    instance = _PrecomputedInstance(dataset, candidates)
    scored: list[tuple[float, tuple[int, ...], np.ndarray]] = []
    for subset_rows in _iter_subset_chunks(candidates.shape[0], k):
        candidate_index_rows = instance.ed_assignments(subset_rows)
        costs = instance.assigned_costs(candidate_index_rows)
        scored.extend(
            (float(cost), tuple(int(c) for c in subset), candidate_indices)
            for cost, subset, candidate_indices in zip(costs, subset_rows, candidate_index_rows)
        )
    scored.sort(key=lambda entry: entry[0])

    polish_top = max(1, min(polish_top, len(scored)))
    if exhaustive_assignment is None:
        exhaustive_assignment = polish_top * (k**n) <= MAX_ASSIGNMENT_ENUMERATION

    best_cost, best_subset, best_candidate_indices = scored[0]
    for cost, subset, _ in scored[:polish_top]:
        columns = np.asarray(subset, dtype=int)
        if exhaustive_assignment:
            for assignment_rows in _iter_assignment_chunks(columns, n):
                costs = instance.assigned_costs(assignment_rows)
                winner = int(np.argmin(costs))
                if costs[winner] < best_cost:
                    best_cost = float(costs[winner])
                    best_subset, best_candidate_indices = subset, assignment_rows[winner]
        else:
            candidate_indices = instance.ed_assignment(subset)
            candidate_indices = _single_move_polish(instance, columns, candidate_indices)
            candidate_cost = instance.assigned_cost(candidate_indices)
            if candidate_cost < best_cost:
                best_cost, best_subset, best_candidate_indices = candidate_cost, subset, candidate_indices

    columns = np.asarray(best_subset, dtype=int)
    labels = np.searchsorted(columns, best_candidate_indices)
    return UncertainKCenterResult(
        centers=candidates[list(best_subset)],
        expected_cost=float(best_cost),
        objective="unrestricted-assigned",
        assignment=np.asarray(labels, dtype=int),
        assignment_policy="exhaustive" if exhaustive_assignment else "optimal-local",
        guaranteed_factor=None,
        metadata={
            "algorithm": "brute-force-unrestricted",
            "candidate_count": int(candidates.shape[0]),
            "exhaustive_assignment": bool(exhaustive_assignment),
            "polished_subsets": polish_top,
            **k_metadata,
        },
    )


def _single_move_polish(
    instance: _PrecomputedInstance,
    columns: np.ndarray,
    candidate_indices: np.ndarray,
    *,
    max_rounds: int = 10,
) -> np.ndarray:
    """Single-point reassignment local search on the exact assigned cost.

    Each point's candidate moves are scored through the incremental
    evaluator: the other points' sorted sweep is cached once per point and
    every column of ``columns`` is integrated against it.
    """
    current = candidate_indices.copy()
    evaluator = instance.evaluator
    best_cost = evaluator.cost(current)
    n = current.shape[0]
    for _ in range(max_rounds):
        improved = False
        for point_index in range(n):
            original = int(current[point_index])
            profile = evaluator.rest_profile(current, point_index)
            costs = evaluator.move_costs(profile, columns)
            winner = int(np.argmin(costs))
            tolerance = 1e-12 * max(1.0, abs(best_cost))
            if int(columns[winner]) != original and costs[winner] < best_cost - tolerance:
                current[point_index] = int(columns[winner])
                best_cost = float(costs[winner])
                improved = True
        if not improved:
            break
    return current


def brute_force_unassigned(
    dataset: UncertainDataset,
    k: int,
    *,
    candidates: np.ndarray | None = None,
) -> UncertainKCenterResult:
    """Best candidate centers for the unassigned expected cost (exact over the set)."""
    k = check_positive_int(k, name="k")
    if candidates is None:
        candidates = default_candidates(dataset)
    candidates = as_point_array(candidates, name="candidates")
    k, k_metadata = _effective_k(k, candidates.shape[0])

    instance = _PrecomputedInstance(dataset, candidates)
    best_cost = np.inf
    best_subset: tuple[int, ...] | None = None
    for subset_rows in _iter_subset_chunks(candidates.shape[0], k):
        costs = instance.unassigned_costs(subset_rows)
        winner = int(np.argmin(costs))
        if costs[winner] < best_cost:
            best_cost = float(costs[winner])
            best_subset = tuple(int(c) for c in subset_rows[winner])
    assert best_subset is not None
    return UncertainKCenterResult(
        centers=candidates[list(best_subset)],
        expected_cost=float(best_cost),
        objective="unassigned",
        guaranteed_factor=None,
        metadata={
            "algorithm": "brute-force-unassigned",
            "candidate_count": int(candidates.shape[0]),
            **k_metadata,
        },
    )
