"""Allow ``python -m repro ...`` to behave like the installed CLI."""

import sys

from .cli import main

if __name__ == "__main__":
    sys.exit(main())
