"""Dependency-free ASCII visualisation of uncertain instances and solutions.

The library ships without plotting dependencies, but eyeballing an instance
is invaluable when debugging clustering behaviour.  This module renders 2-D
(and 1-D) uncertain datasets and solutions as character grids:

* ``.``  possible location of an uncertain point (darker = more probable),
* ``o``  expected point of an uncertain point,
* ``C``  chosen center.

The CLI's ``demo`` sub-command and the examples can print these directly;
tests assert on the structural properties of the rendering (dimensions,
marker counts) rather than exact glyph placement.
"""

from __future__ import annotations

import numpy as np

from ._validation import as_point_array
from .exceptions import ValidationError
from .uncertain.dataset import UncertainDataset

#: Probability shading buckets, light to dark.
_SHADES = ".,:;*"


def _project(points: np.ndarray) -> np.ndarray:
    """Project points to 2-D for display (pad 1-D, truncate d > 2)."""
    if points.shape[1] == 1:
        return np.hstack([points, np.zeros_like(points)])
    if points.shape[1] > 2:
        return points[:, :2]
    return points


def render_dataset(
    dataset: UncertainDataset,
    centers: np.ndarray | None = None,
    *,
    width: int = 72,
    height: int = 24,
    show_expected_points: bool = True,
) -> str:
    """Render a dataset (and optional centers) as an ASCII grid.

    Parameters
    ----------
    dataset:
        The uncertain dataset.  Finite-metric datasets are not supported
        (their "coordinates" are element indices, not positions).
    centers:
        Optional ``(k, d)`` center array to overlay.
    width, height:
        Character dimensions of the grid.
    show_expected_points:
        Overlay each point's expected point with ``o``.
    """
    if not dataset.metric.supports_expected_point:
        raise ValidationError("ASCII rendering needs coordinate (Euclidean-style) data")
    if width < 8 or height < 4:
        raise ValidationError("grid must be at least 8x4 characters")

    locations = _project(dataset.all_locations())
    overlays = [locations]
    if centers is not None:
        centers = _project(as_point_array(centers, name="centers"))
        overlays.append(centers)
    expected = _project(dataset.expected_points()) if show_expected_points else None
    if expected is not None:
        overlays.append(expected)

    stacked = np.vstack(overlays)
    lower = stacked.min(axis=0)
    upper = stacked.max(axis=0)
    span = np.maximum(upper - lower, 1e-12)

    def to_cell(point: np.ndarray) -> tuple[int, int]:
        col = int(round((point[0] - lower[0]) / span[0] * (width - 1)))
        row = int(round((point[1] - lower[1]) / span[1] * (height - 1)))
        return (height - 1 - row, col)

    grid = [[" "] * width for _ in range(height)]

    probabilities = dataset.all_probabilities()
    for location, probability in zip(locations, probabilities):
        row, col = to_cell(location)
        shade = _SHADES[min(int(probability * len(_SHADES)), len(_SHADES) - 1)]
        if grid[row][col] in (" ",) or grid[row][col] in _SHADES:
            grid[row][col] = shade

    if expected is not None:
        for point in expected:
            row, col = to_cell(point)
            grid[row][col] = "o"

    if centers is not None:
        for center in centers:
            row, col = to_cell(center)
            grid[row][col] = "C"

    legend = "legend: location shade=probability, o=expected point, C=center"
    frame_top = "+" + "-" * width + "+"
    body = "\n".join("|" + "".join(row) + "|" for row in grid)
    return "\n".join([legend, frame_top, body, frame_top])


def render_solution_summary(dataset: UncertainDataset, centers: np.ndarray, assignment: np.ndarray | None) -> str:
    """Per-center text summary: member labels and their expected distances."""
    centers = as_point_array(centers, name="centers")
    lines = []
    for center_index, center in enumerate(centers):
        if assignment is None:
            members = list(range(dataset.size))
        else:
            members = np.flatnonzero(np.asarray(assignment) == center_index).tolist()
        labels = [dataset.points[i].label or f"P{i}" for i in members]
        distances = [dataset.points[i].expected_distance_to(center, dataset.metric) for i in members]
        worst = max(distances) if distances else 0.0
        lines.append(
            f"center[{center_index}] at {np.round(center, 3).tolist()}: "
            f"{len(members)} points, worst expected distance {worst:.4f} ({', '.join(labels) or 'none'})"
        )
    return "\n".join(lines)
