"""Exception hierarchy for the ``repro`` (uncertain k-center) library.

All exceptions raised intentionally by the library derive from
:class:`ReproError`, so callers can catch a single base class.  The more
specific subclasses distinguish between bad user input, numerical issues and
unsupported feature combinations.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the library."""


class ValidationError(ReproError, ValueError):
    """Raised when user supplied data fails validation.

    Examples: probabilities that do not sum to one, empty location lists,
    mismatched dimensions, a non-positive ``k``.
    """


class DimensionMismatchError(ValidationError):
    """Raised when points of different dimensionality are mixed."""


class ProbabilityError(ValidationError):
    """Raised when a probability vector is negative or does not sum to 1."""


class MetricError(ReproError):
    """Raised when a metric cannot evaluate the requested distance.

    Typical causes: a point that is not a member of a finite metric space, a
    disconnected graph metric, or an invalid Minkowski order.
    """


class NotSupportedError(ReproError, NotImplementedError):
    """Raised when an algorithm does not support the requested combination.

    Example: requesting the expected-point reduction in a non-Euclidean
    metric space, where the convex combination of locations is undefined.
    """


class ConvergenceError(ReproError, RuntimeError):
    """Raised when an iterative numerical routine fails to converge."""


class InfeasibleError(ReproError, RuntimeError):
    """Raised when a solver can prove the requested instance is infeasible.

    Example: asking for ``k`` centers from a candidate set with fewer than
    ``k`` distinct elements while requiring distinct centers.
    """
