"""Command-line interface.

Installed as ``uncertain-kcenter`` (also reachable via ``python -m repro``).

Sub-commands
------------
``table1``
    Run the Table-1 reproduction experiments and print the report.
``scaling``
    Run the running-time scaling experiment (E11).
``ablation``
    Run the representative/assignment ablations (E12).
``sensitivity``
    Run the outlier / support-size sensitivity sweeps (E13a/E13b).
``bench``
    Execute the machine-readable benchmark suite and write its JSON document
    (``--out``, ``BENCH_PR10.json`` by default) — the perf trajectory future
    PRs compare against.  ``--compare BENCH_PR5.json`` prints a per-case
    speedup delta table against an earlier document; exit code 3 flags >20%
    regressions (other nonzero codes are crashes).  ``--quick`` runs the
    fast subset of cases for CI smoke steps.
``lint``
    Run the repo-aware static checker (:mod:`repro.analysis`) over the tree:
    AST rules enforcing the runtime's concurrency, determinism and hot-path
    invariants.  Exit 0 clean, 1 findings (warnings too under ``--strict``),
    2 usage error — suitable for CI gating.  ``--list-rules`` prints every
    rule with the incident that motivated it; ``--env-table`` prints the
    README environment-variable table generated from :mod:`repro._env`.
``solve``
    Solve an uncertain k-center instance stored in a JSON file (the format
    written by :meth:`repro.UncertainDataset.save_json`).
``demo``
    Generate a synthetic workload and solve it end to end, printing the
    solution summary (a smoke test that exercises the whole pipeline).
``serve``
    Run the long-lived crash-tolerant solve/score HTTP server
    (:mod:`repro.serve`): JSON endpoints ``/v1/solve``, ``/v1/score``,
    ``/v1/assign`` plus ``/healthz``, ``/readyz`` and ``/stats``, with
    admission control (429/413), per-request ``deadline_ms`` mapped onto
    the anytime ``time_budget``, a circuit breaker over runtime
    degradation, and SIGTERM/SIGINT drain.

Parallelism
-----------
``table1``, ``all``, ``ablation`` and ``sensitivity`` accept ``--workers N``
to shard their independent trial cases across ``N`` processes
(:mod:`repro.runtime.parallel`; one persistent pool serves every experiment
of a run, and the requested count is clamped to the CPUs actually
available, so over-asking never slows a small box down).  The default is
``1`` — fully serial — and results are **identical at every worker count**;
workers only change wall clock.  The scaling experiment and the timed E13b
support-size sweep always run serially because they measure wall clock
itself.

Pruning
-------
The brute-force reference solvers run with branch-and-bound pruning by
default (admissible lower bounds against a shared incumbent — see
:mod:`repro.baselines.brute_force`).  ``table1`` and ``all`` accept
``--no-prune`` as an escape hatch that forces the exhaustive scans instead;
results are bit-identical either way (pruning only skips provably losing
rows), so the flag exists for debugging and for measuring the pruning win.

Deadlines and gap targets
-------------------------
``table1`` and ``all`` accept ``--time-budget SECONDS`` to cap each
brute-force reference solve.  A reference that exhausts its budget returns
the best incumbent found so far together with a ``(cost, lower_bound,
gap)`` optimality certificate derived from the admissible chunk bounds of
the subsets it never scanned — the anytime contract documented in
:mod:`repro.baselines.brute_force`.  ``--gap-target GAP`` is the precision
analogue: the best-first enumeration stops as soon as the certified
relative gap between the incumbent and the minimum outstanding chunk bound
reaches ``GAP``, with the same certificate shape.  It composes with
``--time-budget`` (whichever fires first) and requires pruning, so it
rejects ``--no-prune``.
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import replace
from pathlib import Path

from .algorithms.metric_space import solve_metric_unrestricted
from .algorithms.restricted import solve_restricted_assigned
from .algorithms.unrestricted import solve_unrestricted_assigned
from .experiments.ablation import AblationSettings, run_assignment_ablation, run_representative_ablation
from .experiments.harness import render_full_report, run_everything, run_quick
from .experiments.report import render_record, render_records
from .experiments.scaling import ScalingSettings, run_scaling
from .experiments.sensitivity import (
    SensitivitySettings,
    run_outlier_sensitivity,
    run_support_size_sensitivity,
)
from .experiments.table1 import Table1Settings, run_all_table1
from .uncertain.dataset import UncertainDataset
from .workloads.synthetic import gaussian_clusters


def _add_workers_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help=(
            "processes to shard independent trial cases across "
            "(default 1 = serial; any value produces identical results)"
        ),
    )


def _add_no_prune_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--no-prune",
        action="store_true",
        help=(
            "disable branch-and-bound pruning in the brute-force reference "
            "solvers (escape hatch; results are bit-identical with pruning "
            "on, it only skips provably losing rows)"
        ),
    )


def _add_time_budget_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--time-budget",
        type=float,
        default=None,
        metavar="SECONDS",
        help=(
            "wall-clock budget per brute-force reference solve; an exhausted "
            "reference returns its best incumbent plus a (cost, lower_bound, "
            "gap) optimality certificate instead of the exact optimum "
            "(default: run to completion)"
        ),
    )


def _add_gap_target_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--gap-target",
        type=float,
        default=None,
        metavar="GAP",
        help=(
            "certified relative optimality gap at which each brute-force "
            "reference solve may stop early, e.g. 0.01 for 1%%; the precision "
            "analogue of --time-budget, same (cost, lower_bound, gap) "
            "certificate; needs pruning, so it rejects --no-prune "
            "(default: run to completion)"
        ),
    )


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="uncertain-kcenter",
        description="k-center clustering for uncertain data (PODS 2018 reproduction)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    table1 = subparsers.add_parser("table1", help="reproduce the paper's Table 1")
    table1.add_argument("--quick", action="store_true", help="use the lightweight experiment preset")
    table1.add_argument("--output", type=Path, default=None, help="also write the report to this file")
    _add_workers_argument(table1)
    _add_no_prune_argument(table1)
    _add_time_budget_argument(table1)
    _add_gap_target_argument(table1)

    everything = subparsers.add_parser(
        "all", help="run every experiment (Table 1, scaling, ablations, sensitivity)"
    )
    everything.add_argument("--quick", action="store_true", help="use the lightweight experiment preset")
    everything.add_argument("--output", type=Path, default=None, help="also write the report to this file")
    _add_workers_argument(everything)
    _add_no_prune_argument(everything)
    _add_time_budget_argument(everything)
    _add_gap_target_argument(everything)

    scaling = subparsers.add_parser("scaling", help="running-time scaling experiment (E11)")
    scaling.add_argument("--quick", action="store_true")

    ablation = subparsers.add_parser("ablation", help="representative / assignment ablations (E12)")
    ablation.add_argument("--quick", action="store_true")
    _add_workers_argument(ablation)

    sensitivity = subparsers.add_parser(
        "sensitivity", help="outlier / support-size sensitivity sweeps (E13)"
    )
    sensitivity.add_argument("--quick", action="store_true")
    _add_workers_argument(sensitivity)

    bench = subparsers.add_parser(
        "bench", help="run the benchmark suite, write machine-readable timings"
    )
    bench.add_argument(
        "--out",
        "--output",
        dest="out",
        type=Path,
        default=Path("BENCH_PR10.json"),
        help="JSON document to write (default: BENCH_PR10.json)",
    )
    bench.add_argument(
        "--compare",
        type=Path,
        default=None,
        help=(
            "earlier benchmark document (e.g. BENCH_PR5.json) to diff against; "
            "prints a per-case speedup delta table (cases present in only one "
            "document are listed, not errors) and exits with code 3 on >20%% "
            "regressions"
        ),
    )
    bench.add_argument(
        "--case",
        action="append",
        default=None,
        help="run only this case (repeatable); default: every case",
    )
    bench.add_argument(
        "--quick",
        action="store_true",
        help="run only the fast smoke subset of cases (CI's bench step)",
    )

    lint = subparsers.add_parser(
        "lint", help="run the repo-aware static checker (runtime invariants)"
    )
    lint.add_argument(
        "paths",
        nargs="*",
        type=Path,
        default=None,
        help="files/directories to check (default: src/ when present, else .)",
    )
    lint.add_argument(
        "--format",
        choices=["text", "json"],
        default="text",
        help="report format (json is schema-tagged repro-lint/1)",
    )
    lint.add_argument(
        "--strict",
        action="store_true",
        help="treat warning-severity findings as gating (exit 1)",
    )
    lint.add_argument(
        "--verbose",
        action="store_true",
        help="also list suppressed findings with their justifications",
    )
    lint.add_argument(
        "--list-rules",
        action="store_true",
        help="print every rule (id, severity, motivating incident) and exit",
    )
    lint.add_argument(
        "--env-table",
        action="store_true",
        help="print the README environment-variable table generated from repro._env and exit",
    )
    lint.add_argument(
        "--no-dataflow",
        action="store_true",
        help="skip the whole-program dataflow pass (fast intra-module mode)",
    )
    lint.add_argument(
        "--baseline",
        type=Path,
        default=None,
        help="JSON report (--format json output) of known findings to report without gating",
    )

    solve = subparsers.add_parser("solve", help="solve an instance from a JSON dataset file")
    solve.add_argument("dataset", type=Path, help="JSON file written by UncertainDataset.save_json")
    solve.add_argument("-k", type=int, required=True, help="number of centers")
    solve.add_argument(
        "--objective",
        choices=["restricted", "unrestricted", "metric"],
        default="unrestricted",
        help="which problem version to solve",
    )
    solve.add_argument(
        "--assignment",
        default=None,
        help="assignment rule (expected-distance, expected-point, one-center)",
    )
    solve.add_argument("--solver", default="gonzalez", help="deterministic solver (gonzalez, epsilon, ...)")
    solve.add_argument("--epsilon", type=float, default=0.1, help="epsilon for the (1+eps) solver")
    solve.add_argument("--json", action="store_true", help="print machine-readable JSON instead of text")

    demo = subparsers.add_parser("demo", help="generate a synthetic instance and solve it")
    demo.add_argument("-n", type=int, default=40, help="number of uncertain points")
    demo.add_argument("-z", type=int, default=4, help="locations per point")
    demo.add_argument("-k", type=int, default=3, help="number of centers")
    demo.add_argument("--seed", type=int, default=0)

    serve = subparsers.add_parser(
        "serve", help="run the crash-tolerant solve/score HTTP server"
    )
    serve.add_argument("--host", default=None, help="bind address (default 127.0.0.1)")
    serve.add_argument(
        "--port", type=int, default=None, help="TCP port (default 8765; 0 = ephemeral)"
    )
    serve.add_argument(
        "--workers",
        type=int,
        default=None,
        help="worker processes a solve may use (default 1 = serial)",
    )
    serve.add_argument(
        "--max-inflight",
        type=int,
        default=None,
        help="concurrent-request cap; excess queues briefly then gets 429 + Retry-After"
        " (default 4, or REPRO_SERVE_MAX_INFLIGHT)",
    )
    serve.add_argument(
        "--max-bytes",
        type=int,
        default=None,
        help="request-body bound; oversized requests get 413 before any work"
        " (default 8 MiB, or REPRO_SERVE_MAX_BYTES)",
    )
    serve.add_argument(
        "--drain-seconds",
        type=float,
        default=None,
        help="budget for draining in-flight requests on SIGTERM/SIGINT"
        " (default 10, or REPRO_SERVE_DRAIN_SECONDS)",
    )
    serve.add_argument(
        "--store-size",
        type=int,
        default=None,
        help="cost contexts kept hot in the shared store (default 16)",
    )
    serve.add_argument(
        "--prewarm",
        action="append",
        type=Path,
        default=None,
        metavar="DATASET.json",
        help="dataset file whose default-candidate context is built before serving"
        " (repeatable; single-flight, so duplicates are free)",
    )
    serve.add_argument(
        "--verbose", action="store_true", help="log every request to stderr"
    )
    return parser


def _cmd_table1(args: argparse.Namespace) -> int:
    settings = Table1Settings.quick() if args.quick else Table1Settings()
    settings = replace(
        settings,
        workers=args.workers,
        prune=not args.no_prune,
        time_budget=args.time_budget,
        gap_target=args.gap_target,
    )
    report = render_records(run_all_table1(settings))
    print(report)
    if args.output is not None:
        args.output.write_text(report + "\n")
    return 0


def _cmd_all(args: argparse.Namespace) -> int:
    if args.quick:
        records = run_quick(
            workers=args.workers,
            prune=not args.no_prune,
            time_budget=args.time_budget,
            gap_target=args.gap_target,
        )
    else:
        records = run_everything(
            workers=args.workers,
            prune=not args.no_prune,
            time_budget=args.time_budget,
            gap_target=args.gap_target,
        )
    report = render_full_report(records)
    print(report)
    if args.output is not None:
        args.output.write_text(report + "\n")
    return 0


def _cmd_scaling(args: argparse.Namespace) -> int:
    settings = ScalingSettings.quick() if args.quick else ScalingSettings()
    print(render_record(run_scaling(settings)))
    return 0


def _cmd_ablation(args: argparse.Namespace) -> int:
    settings = AblationSettings.quick() if args.quick else AblationSettings()
    settings = replace(settings, workers=args.workers)
    print(render_record(run_representative_ablation(settings)))
    print()
    print(render_record(run_assignment_ablation(settings)))
    return 0


def _cmd_sensitivity(args: argparse.Namespace) -> int:
    settings = SensitivitySettings.quick() if args.quick else SensitivitySettings()
    settings = replace(settings, workers=args.workers)
    print(render_record(run_outlier_sensitivity(settings)))
    print()
    print(render_record(run_support_size_sensitivity(settings)))
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from .runtime.bench import report_comparison, run_bench

    document = run_bench(args.out, cases=args.case, quick=args.quick)
    print(json.dumps(document, indent=2))
    print(f"\nwrote {args.out}", file=sys.stderr)
    if args.compare is not None:
        return report_comparison(document, args.compare)
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    from ._env import render_readme_table
    from .analysis import (
        apply_baseline,
        lint_paths,
        render_json,
        render_rule_table,
        render_text,
    )

    if args.list_rules:
        print(render_rule_table())
        return 0
    if args.env_table:
        print(render_readme_table())
        return 0
    targets = args.paths or ([Path("src")] if Path("src").is_dir() else [Path(".")])
    report = lint_paths(targets, dataflow=not args.no_dataflow)
    if args.baseline is not None:
        try:
            baseline_document = json.loads(args.baseline.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError) as error:
            report.errors.append(f"cannot read baseline {args.baseline}: {error}")
        else:
            apply_baseline(report, baseline_document)
    if args.format == "json":
        print(render_json(report, strict=args.strict))
    else:
        print(render_text(report, strict=args.strict, verbose=args.verbose))
    return report.exit_code(strict=args.strict)


def _cmd_solve(args: argparse.Namespace) -> int:
    dataset = UncertainDataset.load_json(args.dataset)
    if args.objective == "restricted":
        assignment = args.assignment or "expected-distance"
        result = solve_restricted_assigned(
            dataset, args.k, assignment=assignment, solver=args.solver, epsilon=args.epsilon
        )
    elif args.objective == "unrestricted":
        assignment = args.assignment or "expected-point"
        result = solve_unrestricted_assigned(
            dataset, args.k, assignment=assignment, solver=args.solver, epsilon=args.epsilon
        )
    else:
        assignment = args.assignment or "one-center"
        result = solve_metric_unrestricted(
            dataset, args.k, assignment=assignment, solver=args.solver, epsilon=args.epsilon
        )
    if args.json:
        payload = {
            "centers": result.centers.tolist(),
            "expected_cost": result.expected_cost,
            "objective": result.objective,
            "assignment": None if result.assignment is None else result.assignment.tolist(),
            "assignment_policy": result.assignment_policy,
            "guaranteed_factor": result.guaranteed_factor,
        }
        print(json.dumps(payload, indent=2))
    else:
        print(result.summary())
        for index, center in enumerate(result.centers):
            print(f"  center[{index}] = {center.tolist()}")
    return 0


def _cmd_demo(args: argparse.Namespace) -> int:
    dataset, spec = gaussian_clusters(n=args.n, z=args.z, dimension=2, k_true=args.k, seed=args.seed)
    print(f"workload: {spec.describe()}")
    result = solve_unrestricted_assigned(dataset, args.k, assignment="expected-point", solver="epsilon")
    print(result.summary())
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from .serve import ReproServer, ServeConfig

    config = ServeConfig.from_env(
        host=args.host,
        port=8765 if args.port is None else args.port,
        workers=args.workers,
        max_inflight=args.max_inflight,
        max_body_bytes=args.max_bytes,
        drain_seconds=args.drain_seconds,
        store_size=args.store_size,
    )
    server = ReproServer(config, verbose=args.verbose)
    if args.prewarm:
        datasets = [UncertainDataset.load_json(path) for path in args.prewarm]
        built = server.prewarm(datasets)
        print(f"prewarmed {built} context(s) for {len(datasets)} dataset(s)", file=sys.stderr)
    return server.run()


_COMMANDS = {
    "table1": _cmd_table1,
    "all": _cmd_all,
    "scaling": _cmd_scaling,
    "ablation": _cmd_ablation,
    "sensitivity": _cmd_sensitivity,
    "bench": _cmd_bench,
    "lint": _cmd_lint,
    "solve": _cmd_solve,
    "demo": _cmd_demo,
    "serve": _cmd_serve,
}


def main(argv: list[str] | None = None) -> int:
    """Entry point used by the console script and ``python -m repro``."""
    parser = _build_parser()
    args = parser.parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
