"""Unrestricted assigned uncertain k-center in Euclidean-style spaces.

Theorems 2.4 and 2.5: run a deterministic k-center solver (factor ``f``) on
the expected points and pair the resulting centers with the expected-distance
or expected-point assignment.  The assigned expected cost is within

* ``(4 + f)`` (ED assignment, Theorem 2.4), or
* ``(2 + f)`` (EP assignment, Theorem 2.5)

of the *unrestricted* optimum — i.e. the best possible over all centers *and*
all assignments.  With Gonzalez (``f = 2``) the EP variant gives Table 1's
factor 4 in ``O(nz + n log k)`` time; with a ``(1+ε)`` solver, ``3 + ε``.

The produced solution is identical in structure to the restricted one (the
algorithm *is* the same reduction); the difference is the benchmark it is
guaranteed against, which the experiments measure accordingly.
"""

from __future__ import annotations

from .._validation import check_positive_int
from ..assignments.base import AssignmentPolicy
from ..assignments.policies import ExpectedDistanceAssignment, ExpectedPointAssignment, OptimalAssignment
from ..cost.context import CostContext
from ..exceptions import NotSupportedError, ValidationError
from ..uncertain.dataset import UncertainDataset
from ..uncertain.reduction import expected_point_reduction
from .factors import unrestricted_euclidean_factor
from .result import UncertainKCenterResult
from .solvers import DeterministicSolver, resolve_solver

_POLICIES: dict[str, type[AssignmentPolicy]] = {
    "expected-distance": ExpectedDistanceAssignment,
    "expected-point": ExpectedPointAssignment,
}


def solve_unrestricted_assigned(
    dataset: UncertainDataset,
    k: int,
    *,
    assignment: str | AssignmentPolicy = "expected-point",
    solver: str | DeterministicSolver = "gonzalez",
    epsilon: float | None = None,
    polish_assignment: bool = False,
) -> UncertainKCenterResult:
    """Solve the unrestricted assigned problem via Theorems 2.4 / 2.5.

    Parameters
    ----------
    dataset, k, solver, epsilon:
        As in :func:`repro.algorithms.restricted.solve_restricted_assigned`.
    assignment:
        ``"expected-point"`` (default, Theorem 2.5, factor ``2 + f``) or
        ``"expected-distance"`` (Theorem 2.4, factor ``4 + f``).
    polish_assignment:
        When true, after computing the guaranteed solution run the
        local-search :class:`OptimalAssignment` policy on the same centers.
        The polished assignment can only lower the cost, so the theorem's
        guarantee still holds; the extra work is ``O(rounds * n * k)`` exact
        cost evaluations.
    """
    if not dataset.metric.supports_expected_point:
        raise NotSupportedError(
            "Theorems 2.4/2.5 need expected points; use solve_metric_unrestricted for general metrics"
        )
    k = check_positive_int(k, name="k")
    policy = _resolve_policy(assignment)
    solve = resolve_solver(solver, epsilon=epsilon)

    representatives = expected_point_reduction(dataset)
    deterministic = solve(representatives, k, dataset.metric)
    centers = deterministic.centers
    labels = policy(dataset, centers)
    # One shared cost context serves the guaranteed solution's score, the
    # local-search polish, and the polished score — the polished labels are
    # no longer re-scored from scratch.  When polishing, pin the supports up
    # front so the initial score, the polish rounds and the re-score all ride
    # one metric pass; without polish the lazy single-score path stays O(nz).
    context = CostContext(dataset, centers)
    if polish_assignment:
        _ = context.supports  # pin now so every stage below shares one metric pass
    cost = context.assigned_cost(labels)

    polished = False
    if polish_assignment:
        better_labels = OptimalAssignment(context=context)(dataset, centers)
        better_cost = context.assigned_cost(better_labels)
        if better_cost < cost:
            labels, cost, polished = better_labels, better_cost, True

    factor = None
    if deterministic.approximation_factor is not None:
        factor = unrestricted_euclidean_factor(policy.name, deterministic.approximation_factor)
    return UncertainKCenterResult(
        centers=centers,
        expected_cost=cost,
        objective="unrestricted-assigned",
        assignment=labels,
        assignment_policy=policy.name,
        guaranteed_factor=factor,
        representatives=representatives,
        metadata={
            "theorem": "2.5" if policy.name == "expected-point" else "2.4",
            "deterministic": deterministic.metadata.get("algorithm"),
            "deterministic_factor": deterministic.approximation_factor,
            "deterministic_radius": deterministic.radius,
            "assignment_polished": polished,
        },
    )


def _resolve_policy(assignment: str | AssignmentPolicy) -> AssignmentPolicy:
    if isinstance(assignment, AssignmentPolicy):
        if assignment.name not in _POLICIES:
            raise ValidationError(
                f"Theorems 2.4/2.5 cover the assignments {sorted(_POLICIES)}, not {assignment.name!r}"
            )
        return assignment
    if assignment not in _POLICIES:
        raise ValidationError(f"unknown assignment {assignment!r}; choose one of {sorted(_POLICIES)}")
    return _POLICIES[assignment]()
