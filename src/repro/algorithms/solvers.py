"""Deterministic-solver selection shared by the uncertain k-center wrappers.

The paper's reductions are parameterised by "any approximation algorithm for
the deterministic k-center problem".  The uncertain solvers accept either a
solver name from :data:`DETERMINISTIC_SOLVERS` or any callable with the
signature ``solver(points, k, metric) -> KCenterResult``; the returned
result's ``approximation_factor`` is what gets plugged into the theorem's
factor formula.
"""

from __future__ import annotations

from typing import Callable, Protocol

import numpy as np

from ..deterministic.eps_approx import epsilon_kcenter
from ..deterministic.exact import exact_discrete_kcenter, exact_euclidean_kcenter
from ..deterministic.gonzalez import gonzalez_kcenter
from ..deterministic.hochbaum_shmoys import hochbaum_shmoys_kcenter
from ..deterministic.result import KCenterResult
from ..exceptions import ValidationError
from ..metrics.base import Metric

DeterministicSolver = Callable[[np.ndarray, int, Metric], KCenterResult]


class _NamedSolver(Protocol):  # pragma: no cover - typing aid only
    def __call__(self, points: np.ndarray, k: int, metric: Metric) -> KCenterResult: ...


def _gonzalez(points: np.ndarray, k: int, metric: Metric) -> KCenterResult:
    return gonzalez_kcenter(points, k, metric)


def _epsilon(points: np.ndarray, k: int, metric: Metric, *, epsilon: float = 0.1) -> KCenterResult:
    return epsilon_kcenter(points, k, epsilon)


def _hochbaum_shmoys(points: np.ndarray, k: int, metric: Metric) -> KCenterResult:
    return hochbaum_shmoys_kcenter(points, k, metric)


def _exact_discrete(points: np.ndarray, k: int, metric: Metric) -> KCenterResult:
    return exact_discrete_kcenter(points, k, metric)


def _exact_euclidean(points: np.ndarray, k: int, metric: Metric) -> KCenterResult:
    return exact_euclidean_kcenter(points, k)


#: Named deterministic solvers usable by the uncertain k-center wrappers.
DETERMINISTIC_SOLVERS: dict[str, DeterministicSolver] = {
    "gonzalez": _gonzalez,
    "epsilon": _epsilon,
    "hochbaum-shmoys": _hochbaum_shmoys,
    "exact-discrete": _exact_discrete,
    "exact-euclidean": _exact_euclidean,
}


def resolve_solver(
    solver: str | DeterministicSolver,
    *,
    epsilon: float | None = None,
) -> DeterministicSolver:
    """Turn a solver name or callable into a callable.

    ``epsilon`` is honoured by the ``"epsilon"`` solver and ignored by the
    others.
    """
    if callable(solver):
        return solver
    if solver not in DETERMINISTIC_SOLVERS:
        raise ValidationError(
            f"unknown deterministic solver {solver!r}; choose one of {sorted(DETERMINISTIC_SOLVERS)}"
        )
    if solver == "epsilon" and epsilon is not None:
        return lambda points, k, metric: epsilon_kcenter(points, k, epsilon)
    return DETERMINISTIC_SOLVERS[solver]
