"""Extensions beyond the paper's theorems (its stated future work).

The conclusion announces: "In a future work, we intend to use our approach to
study the k-median and the k-mean problems."  For the *assigned* versions
these objectives are much easier than k-center because the expectation
commutes with the sum:

``E[ sum_i d(X_i, A(P_i)) ] = sum_i E[ d(X_i, A(P_i)) ]``

so the uncertain assigned k-median is exactly a deterministic k-median
problem where the "distance" from uncertain point ``i`` to a candidate
center ``c`` is the expected distance ``E[d(P_i, c)]`` (which is itself a
metric-like dissimilarity but not a metric).  This module implements:

* :func:`solve_uncertain_kmedian` — swap-based local search over a finite
  candidate set on the expected-distance matrix (the classical single-swap
  local search; 5-approximation for metric k-median in the deterministic
  setting), and
* :func:`solve_uncertain_kmeans` — the analogous sum-of-squared-expected
  distances variant with Lloyd-style alternation on expected points.

These are extensions, not reproductions of proven theorems; the experiments
label them accordingly.
"""

from __future__ import annotations

import numpy as np

from .._validation import check_positive_int
from ..cost.expected import expected_distance_matrix
from ..exceptions import NotSupportedError
from ..uncertain.dataset import UncertainDataset
from .result import UncertainKCenterResult


def _default_candidates(dataset: UncertainDataset) -> np.ndarray:
    if dataset.metric.supports_expected_point:
        return np.vstack([dataset.all_locations(), dataset.expected_points()])
    return dataset.metric.candidate_centers(dataset.all_locations())


def solve_uncertain_kmedian(
    dataset: UncertainDataset,
    k: int,
    *,
    candidates: np.ndarray | None = None,
    max_rounds: int = 50,
    seed: int | np.random.Generator | None = 0,
) -> UncertainKCenterResult:
    """Assigned uncertain k-median by single-swap local search.

    Minimises ``sum_i E[d(P_i, A(P_i))]`` with ``A`` the expected-distance
    assignment (which is optimal for this separable objective given the
    centers).
    """
    k = check_positive_int(k, name="k")
    if candidates is None:
        candidates = _default_candidates(dataset)
    # A caller-supplied Generator is used as-is; anything else seeds a fresh
    # one (the old `default_rng(None)` branch silently built an UNSEEDED
    # generator whenever a Generator was passed — NONDET).
    rng = seed if isinstance(seed, np.random.Generator) else np.random.default_rng(seed)
    matrix = expected_distance_matrix(dataset, candidates)  # (n, m)
    m = matrix.shape[1]
    k = min(k, m)

    current = list(rng.choice(m, size=k, replace=False))
    current_cost = float(matrix[:, current].min(axis=1).sum())
    for _ in range(max_rounds):
        improved = False
        for slot in range(k):
            others = [c for i, c in enumerate(current) if i != slot]
            base = matrix[:, others].min(axis=1) if others else np.full(dataset.size, np.inf)
            # Cost after swapping `slot` to each candidate, vectorised.
            swapped = np.minimum(base[:, None], matrix).sum(axis=0)
            best_candidate = int(np.argmin(swapped))
            if swapped[best_candidate] < current_cost - 1e-12:
                current[slot] = best_candidate
                current_cost = float(swapped[best_candidate])
                improved = True
        if not improved:
            break

    centers = candidates[current]
    assignment = matrix[:, current].argmin(axis=1)
    return UncertainKCenterResult(
        centers=centers,
        expected_cost=current_cost,
        objective="assigned-k-median",
        assignment=assignment,
        assignment_policy="expected-distance",
        guaranteed_factor=None,
        metadata={"algorithm": "kmedian-local-search", "candidate_count": int(m)},
    )


def solve_uncertain_kmeans(
    dataset: UncertainDataset,
    k: int,
    *,
    max_rounds: int = 100,
    seed: int | np.random.Generator | None = 0,
) -> UncertainKCenterResult:
    """Assigned uncertain k-means via Lloyd iteration on expected points.

    For squared Euclidean distances,
    ``E[||X_i - c||^2] = ||P̄_i - c||^2 + Var(X_i)`` — the variance term does
    not depend on ``c``, so the optimal centers are exactly the k-means
    centers of the expected points (weighted by 1).  We therefore run plain
    Lloyd iteration on the expected points and report the exact uncertain
    objective including the variance offsets.
    """
    if not dataset.metric.supports_expected_point:
        raise NotSupportedError("the k-means extension requires a Euclidean-style metric")
    k = check_positive_int(k, name="k")
    expected_points = dataset.expected_points()
    n = expected_points.shape[0]
    k = min(k, n)
    # Same NONDET fix as solve_uncertain_kmedian: honor a passed Generator.
    rng = seed if isinstance(seed, np.random.Generator) else np.random.default_rng(seed)
    centers = expected_points[rng.choice(n, size=k, replace=False)].copy()

    # Per-point variance: E||X_i||^2 - ||P̄_i||^2 (independent of centers).
    variances = np.array(
        [
            float((point.probabilities * (point.locations**2).sum(axis=1)).sum())
            - float((point.expected_point() ** 2).sum())
            for point in dataset.points
        ]
    )

    labels = np.zeros(n, dtype=int)
    for _ in range(max_rounds):
        squared = ((expected_points[:, None, :] - centers[None, :, :]) ** 2).sum(axis=2)
        new_labels = squared.argmin(axis=1)
        new_centers = centers.copy()
        for center_index in range(k):
            members = expected_points[new_labels == center_index]
            if members.shape[0] > 0:
                new_centers[center_index] = members.mean(axis=0)
        if np.array_equal(new_labels, labels) and np.allclose(new_centers, centers):
            break
        labels, centers = new_labels, new_centers

    squared = ((expected_points[:, None, :] - centers[None, :, :]) ** 2).sum(axis=2)
    cost = float(squared[np.arange(n), labels].sum() + variances.sum())
    return UncertainKCenterResult(
        centers=centers,
        expected_cost=cost,
        objective="assigned-k-means",
        assignment=labels,
        assignment_policy="expected-point",
        guaranteed_factor=None,
        metadata={"algorithm": "kmeans-lloyd-on-expected-points"},
    )
