"""Facility-restricted uncertain k-center (k-supplier style variant).

A practical database variant of the paper's problem: centers may only be
opened at a given finite set of *facility* positions (warehouse sites,
existing servers, road-network junctions), while the uncertain points roam
freely.  The paper's reduction machinery applies unchanged:

1. replace each uncertain point by its certain representative (expected point
   in Euclidean space, per-point 1-center otherwise);
2. run a deterministic *k-supplier* algorithm — centers restricted to the
   facilities — on the representatives;
3. assign uncertain points to the opened facilities with one of the paper's
   assignment rules.

The factor bookkeeping mirrors Theorems 2.2/2.5 and 2.6/2.7 with ``f`` the
k-supplier solver's factor (3 for the Hochbaum–Shmoys threshold algorithm,
1 for the exact small-instance solver), because the proofs only use that
``cost(c_1..c_k) <= f * cost(c*_1..c*_k)`` for the deterministic instance
whose optimum is itself restricted to the facilities.  This variant is an
*extension* of the reproduction (the paper does not state it), flagged as
such in results' metadata.
"""

from __future__ import annotations

import numpy as np

from .._validation import as_point_array, check_positive_int
from ..assignments.base import AssignmentPolicy
from ..assignments.policies import (
    ExpectedDistanceAssignment,
    ExpectedPointAssignment,
    OneCenterAssignment,
)
from ..cost.expected import expected_cost_assigned
from ..deterministic.supplier import exact_k_supplier, k_supplier
from ..exceptions import ValidationError
from ..uncertain.dataset import UncertainDataset
from ..uncertain.reduction import expected_point_reduction, one_center_reduction
from .factors import unrestricted_euclidean_factor, unrestricted_metric_factor
from .result import UncertainKCenterResult


def solve_facility_restricted(
    dataset: UncertainDataset,
    k: int,
    facilities: np.ndarray,
    *,
    assignment: str | AssignmentPolicy = "expected-distance",
    exact: bool = False,
) -> UncertainKCenterResult:
    """Uncertain k-center with centers restricted to ``facilities``.

    Parameters
    ----------
    dataset, k:
        The uncertain instance.
    facilities:
        ``(m, d)`` array of allowed center positions (graph element indices
        for finite metrics).
    assignment:
        ``"expected-distance"``, ``"expected-point"`` (Euclidean only) or
        ``"one-center"``.
    exact:
        Use the exact small-instance k-supplier solver instead of the
        3-approximation (ground truth for tests / tiny instances).
    """
    k = check_positive_int(k, name="k")
    facilities = as_point_array(facilities, name="facilities")
    policy = _resolve_policy(assignment, facilities)

    euclidean = dataset.metric.supports_expected_point
    if euclidean:
        representatives = expected_point_reduction(dataset)
    else:
        representatives = one_center_reduction(dataset)

    solver = exact_k_supplier if exact else k_supplier
    deterministic = solver(representatives, facilities, k, dataset.metric)
    centers = deterministic.centers
    labels = policy(dataset, centers)
    cost = expected_cost_assigned(dataset, centers, labels)

    factor = None
    if deterministic.approximation_factor is not None:
        if euclidean and policy.name in ("expected-distance", "expected-point"):
            factor = unrestricted_euclidean_factor(policy.name, deterministic.approximation_factor)
        elif not euclidean and policy.name in ("expected-distance", "one-center"):
            factor = unrestricted_metric_factor(policy.name, deterministic.approximation_factor)
    return UncertainKCenterResult(
        centers=centers,
        expected_cost=cost,
        objective="facility-restricted-assigned",
        assignment=labels,
        assignment_policy=policy.name,
        guaranteed_factor=factor,
        representatives=representatives,
        metadata={
            "extension": "facility-restricted (k-supplier style)",
            "deterministic": deterministic.metadata.get("algorithm"),
            "deterministic_factor": deterministic.approximation_factor,
            "facility_count": int(facilities.shape[0]),
        },
    )


def _resolve_policy(assignment: str | AssignmentPolicy, facilities: np.ndarray) -> AssignmentPolicy:
    if isinstance(assignment, AssignmentPolicy):
        return assignment
    if assignment == "expected-distance":
        return ExpectedDistanceAssignment()
    if assignment == "expected-point":
        return ExpectedPointAssignment()
    if assignment == "one-center":
        return OneCenterAssignment()
    raise ValidationError(
        f"unknown assignment {assignment!r}; choose expected-distance, expected-point or one-center"
    )
