"""Unrestricted assigned uncertain k-center in a general metric space.

Theorems 2.6 and 2.7: in an arbitrary metric space expected points do not
exist, so each uncertain point is replaced by its own 1-center ``P̃_i`` (the
point of the space minimising the expected distance to the point's
locations).  A deterministic k-center solver with factor ``f`` runs on the
representatives ``P̃_1 .. P̃_n`` and the resulting centers are paired with

* the expected-distance assignment — factor ``5 + 2f`` (Theorem 2.6), or
* the 1-center assignment — factor ``3 + 2f``      (Theorem 2.7)

with respect to the unrestricted optimum.  With a ``(1+ε)`` deterministic
solver these are the paper's ``7 + 2ε`` and ``5 + 2ε``; Table 1's
"any metric" row quotes the latter.
"""

from __future__ import annotations

import numpy as np

from .._validation import check_positive_int
from ..assignments.base import AssignmentPolicy
from ..assignments.policies import ExpectedDistanceAssignment, OneCenterAssignment
from ..cost.expected import expected_cost_assigned
from ..exceptions import ValidationError
from ..uncertain.dataset import UncertainDataset
from ..uncertain.reduction import one_center_reduction
from .factors import unrestricted_metric_factor
from .result import UncertainKCenterResult
from .solvers import DeterministicSolver, resolve_solver


def solve_metric_unrestricted(
    dataset: UncertainDataset,
    k: int,
    *,
    assignment: str | AssignmentPolicy = "one-center",
    solver: str | DeterministicSolver = "gonzalez",
    epsilon: float | None = None,
    candidates: np.ndarray | None = None,
) -> UncertainKCenterResult:
    """Solve the unrestricted assigned problem in a general metric space.

    Parameters
    ----------
    dataset:
        Uncertain points over any :class:`~repro.metrics.base.Metric`.
    k:
        Number of centers.
    assignment:
        ``"one-center"`` (Theorem 2.7, factor ``3 + 2f``) or
        ``"expected-distance"`` (Theorem 2.6, factor ``5 + 2f``).
    solver, epsilon:
        Deterministic k-center solver run on the representatives; its
        certified factor is ``f``.
    candidates:
        Candidate positions for the per-point 1-centers (defaults to every
        candidate the metric exposes, e.g. all elements of a finite metric).
    """
    k = check_positive_int(k, name="k")
    policy = _resolve_policy(assignment, candidates)
    solve = resolve_solver(solver, epsilon=epsilon)

    representatives = one_center_reduction(dataset, candidates=candidates)
    deterministic = solve(representatives, k, dataset.metric)
    centers = deterministic.centers
    labels = policy(dataset, centers)
    cost = expected_cost_assigned(dataset, centers, labels)

    factor = None
    if deterministic.approximation_factor is not None:
        factor = unrestricted_metric_factor(policy.name, deterministic.approximation_factor)
    return UncertainKCenterResult(
        centers=centers,
        expected_cost=cost,
        objective="unrestricted-assigned",
        assignment=labels,
        assignment_policy=policy.name,
        guaranteed_factor=factor,
        representatives=representatives,
        metadata={
            "theorem": "2.7" if policy.name == "one-center" else "2.6",
            "deterministic": deterministic.metadata.get("algorithm"),
            "deterministic_factor": deterministic.approximation_factor,
            "deterministic_radius": deterministic.radius,
        },
    )


def _resolve_policy(assignment: str | AssignmentPolicy, candidates: np.ndarray | None) -> AssignmentPolicy:
    allowed = {"expected-distance", "one-center"}
    if isinstance(assignment, AssignmentPolicy):
        if assignment.name not in allowed:
            raise ValidationError(
                f"Theorems 2.6/2.7 cover the assignments {sorted(allowed)}, not {assignment.name!r}"
            )
        return assignment
    if assignment == "expected-distance":
        return ExpectedDistanceAssignment()
    if assignment == "one-center":
        return OneCenterAssignment(candidates=candidates)
    raise ValidationError(f"unknown assignment {assignment!r}; choose one of {sorted(allowed)}")
