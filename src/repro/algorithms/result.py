"""Result container for uncertain k-center solutions."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping

import numpy as np


@dataclass(frozen=True)
class UncertainKCenterResult:
    """Outcome of an uncertain k-center computation.

    Attributes
    ----------
    centers:
        ``(k, d)`` array of chosen centers.
    expected_cost:
        The exact expected cost of the solution under ``objective``.
    objective:
        One of ``"unassigned"``, ``"restricted-assigned"`` or
        ``"unrestricted-assigned"``.
    assignment:
        For assigned objectives, ``assignment[i]`` is the center index the
        ``i``-th uncertain point is assigned to; ``None`` otherwise.
    assignment_policy:
        Name of the assignment rule used (``"expected-distance"``,
        ``"expected-point"``, ``"one-center"`` ...), when applicable.
    guaranteed_factor:
        The approximation factor proven for the algorithm/configuration that
        produced this result, already instantiated with the factor certified
        by the underlying deterministic solver (e.g. ``4 + f``).  ``None``
        when no guarantee applies.
    representatives:
        The certain representative points the reduction used (``None`` for
        algorithms that do not reduce).
    metadata:
        Free-form details: deterministic solver result, timings, workload id.
    """

    centers: np.ndarray
    expected_cost: float
    objective: str
    assignment: np.ndarray | None = None
    assignment_policy: str | None = None
    guaranteed_factor: float | None = None
    representatives: np.ndarray | None = None
    metadata: Mapping[str, Any] = field(default_factory=dict)

    @property
    def k(self) -> int:
        """Number of centers."""
        return int(self.centers.shape[0])

    def summary(self) -> str:
        """One-line human readable description."""
        parts = [f"objective={self.objective}", f"k={self.k}", f"Ecost={self.expected_cost:.6g}"]
        if self.assignment_policy:
            parts.append(f"assignment={self.assignment_policy}")
        if self.guaranteed_factor is not None:
            parts.append(f"guaranteed<={self.guaranteed_factor:.3g}x opt")
        return " ".join(parts)
