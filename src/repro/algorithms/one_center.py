"""Uncertain 1-center algorithms (Theorem 2.1 and exact references).

Theorem 2.1: in a Euclidean space, the expected point ``P̄_1`` of *any single*
uncertain point is a 2-approximation of the uncertain 1-center of the whole
dataset (the point minimising ``Ecost(c) = E[max_i d(P̂_i, c)]``), and it is
computable in ``O(z)`` time — independent of ``n``.

Alongside the theorem's construction this module provides stronger (but
slower) references used by the experiments:

* :func:`best_expected_point_one_center` — evaluate all ``n`` expected points
  and keep the cheapest (still a 2-approximation, never worse than the
  theorem's pick);
* :func:`exact_uncertain_one_center_discrete` — the optimal center restricted
  to a finite candidate set, by exhaustive evaluation of the exact expected
  cost (the optimum for finite metrics, a strong reference in Euclidean ones);
* :func:`refined_uncertain_one_center` — numerical descent on the (convex)
  unassigned 1-center objective in Euclidean space, used as the denominator
  when measuring empirical approximation ratios.
"""

from __future__ import annotations

import numpy as np

from .._validation import as_point_array, check_positive_int
from ..cost.expected import expected_one_center_cost
from ..exceptions import NotSupportedError
from ..uncertain.dataset import UncertainDataset
from .factors import ONE_CENTER_EXPECTED_POINT_FACTOR
from .result import UncertainKCenterResult


def expected_point_one_center(dataset: UncertainDataset, point_index: int = 0) -> UncertainKCenterResult:
    """Theorem 2.1: the expected point of one uncertain point as 1-center.

    Parameters
    ----------
    dataset:
        The uncertain dataset (must live in a space supporting expected
        points).
    point_index:
        Which uncertain point's expected point to use.  The guarantee holds
        for every choice; the default mirrors the paper's ``P̄_1``.
    """
    if not dataset.metric.supports_expected_point:
        raise NotSupportedError("Theorem 2.1 requires a normed vector space (expected points)")
    if not 0 <= point_index < dataset.size:
        raise IndexError(f"point_index {point_index} out of range [0, {dataset.size})")
    center = dataset.points[point_index].expected_point()
    cost = expected_one_center_cost(dataset, center)
    return UncertainKCenterResult(
        centers=center.reshape(1, -1),
        expected_cost=cost,
        objective="unassigned",
        guaranteed_factor=ONE_CENTER_EXPECTED_POINT_FACTOR,
        representatives=center.reshape(1, -1),
        metadata={"algorithm": "theorem-2.1", "point_index": point_index},
    )


def best_expected_point_one_center(dataset: UncertainDataset) -> UncertainKCenterResult:
    """Evaluate every point's expected point and keep the cheapest.

    Costs ``O(n)`` expected-cost evaluations instead of Theorem 2.1's
    ``O(z)`` construction, but inherits the same factor-2 guarantee and is
    never worse than :func:`expected_point_one_center`.
    """
    if not dataset.metric.supports_expected_point:
        raise NotSupportedError("expected points require a normed vector space")
    best: UncertainKCenterResult | None = None
    for index in range(dataset.size):
        candidate = expected_point_one_center(dataset, index)
        if best is None or candidate.expected_cost < best.expected_cost:
            best = candidate
    assert best is not None
    return UncertainKCenterResult(
        centers=best.centers,
        expected_cost=best.expected_cost,
        objective="unassigned",
        guaranteed_factor=ONE_CENTER_EXPECTED_POINT_FACTOR,
        representatives=best.representatives,
        metadata={"algorithm": "best-expected-point", "point_index": best.metadata["point_index"]},
    )


def exact_uncertain_one_center_discrete(
    dataset: UncertainDataset,
    candidates: np.ndarray | None = None,
) -> UncertainKCenterResult:
    """Optimal uncertain 1-center restricted to a finite candidate set.

    For a finite metric with ``candidates = all elements`` this is the exact
    optimum.  In Euclidean space it is an upper bound of the cost of the true
    (continuous) optimum, and a strong reference when the candidate set is
    rich (all locations plus all expected points).
    """
    if candidates is None:
        candidates = _default_euclidean_candidates(dataset) if dataset.metric.supports_expected_point else dataset.metric.candidate_centers(dataset.all_locations())
    candidates = as_point_array(candidates, name="candidates")
    best_cost = np.inf
    best_index = 0
    for index in range(candidates.shape[0]):
        cost = expected_one_center_cost(dataset, candidates[index])
        if cost < best_cost:
            best_cost = cost
            best_index = index
    return UncertainKCenterResult(
        centers=candidates[best_index].reshape(1, -1),
        expected_cost=float(best_cost),
        objective="unassigned",
        guaranteed_factor=None,
        metadata={"algorithm": "exact-discrete-1center", "candidate_count": int(candidates.shape[0])},
    )


def refined_uncertain_one_center(
    dataset: UncertainDataset,
    *,
    max_iterations: int = 400,
    restarts: int = 3,
) -> UncertainKCenterResult:
    """Numerical descent on the Euclidean unassigned 1-center objective.

    ``Ecost(c) = E[max_i d(X_i, c)]`` is a convex function of ``c`` in a
    Euclidean space (an expectation of maxima of convex functions), so a
    simple multi-start adaptive coordinate/pattern search converges to the
    optimum.  Used as the strong reference ("opt") in the E1 experiment.
    """
    if not dataset.metric.supports_expected_point:
        raise NotSupportedError("refined 1-center descent requires a Euclidean-style metric")
    check_positive_int(max_iterations, name="max_iterations")
    dim = dataset.dimension
    starts = [expected_point_one_center(dataset).centers[0]]
    starts.append(dataset.all_locations().mean(axis=0))
    best_discrete = exact_uncertain_one_center_discrete(dataset)
    starts.append(best_discrete.centers[0])
    starts = starts[: max(restarts, 1)]

    scale = max(float(np.ptp(dataset.all_locations(), axis=0).max()), 1e-9)
    best_center = None
    best_cost = np.inf
    for start in starts:
        center = start.astype(float).copy()
        cost = expected_one_center_cost(dataset, center)
        step = scale / 4.0
        for _ in range(max_iterations):
            improved = False
            for axis in range(dim):
                for direction in (+1.0, -1.0):
                    candidate = center.copy()
                    candidate[axis] += direction * step
                    candidate_cost = expected_one_center_cost(dataset, candidate)
                    if candidate_cost < cost - 1e-15:
                        center, cost = candidate, candidate_cost
                        improved = True
            if not improved:
                step /= 2.0
                if step < 1e-10 * scale:
                    break
        if cost < best_cost:
            best_cost = cost
            best_center = center
    assert best_center is not None
    return UncertainKCenterResult(
        centers=best_center.reshape(1, -1),
        expected_cost=float(best_cost),
        objective="unassigned",
        guaranteed_factor=None,
        metadata={"algorithm": "pattern-search-1center", "restarts": len(starts)},
    )


def _default_euclidean_candidates(dataset: UncertainDataset) -> np.ndarray:
    """All locations plus all expected points (rich Euclidean candidate set)."""
    return np.vstack([dataset.all_locations(), dataset.expected_points()])
