"""Restricted assigned uncertain k-center in Euclidean-style spaces.

Theorem 2.2 (and Remark 3.1): replace every uncertain point by its expected
point ``P̄_i``, run a deterministic k-center solver with factor ``f`` on the
expected points, and use the resulting centers with the expected-distance or
expected-point assignment.  The expected cost is then within

* ``(4 + f) * optED`` under the expected-distance assignment, and
* ``(2 + f) * optEP`` under the expected-point assignment,

where ``optED`` / ``optEP`` are the best possible costs achievable by *any*
centers under that same (restricted) assignment rule.  With the Gonzalez
solver (``f = 2``) this gives Table 1's factors 6 and 4 with total running
time ``O(nz + n log k)``; with a ``(1+ε)`` solver, ``5 + ε`` and ``3 + ε``.
"""

from __future__ import annotations

from .._validation import check_positive_int
from ..assignments.base import AssignmentPolicy
from ..assignments.policies import ExpectedDistanceAssignment, ExpectedPointAssignment
from ..cost.expected import expected_cost_assigned
from ..exceptions import NotSupportedError, ValidationError
from ..uncertain.dataset import UncertainDataset
from ..uncertain.reduction import expected_point_reduction
from .factors import restricted_euclidean_factor
from .result import UncertainKCenterResult
from .solvers import DeterministicSolver, resolve_solver

#: Assignment policies covered by Theorem 2.2, keyed by their public names.
_POLICIES: dict[str, type[AssignmentPolicy]] = {
    "expected-distance": ExpectedDistanceAssignment,
    "expected-point": ExpectedPointAssignment,
}


def solve_restricted_assigned(
    dataset: UncertainDataset,
    k: int,
    *,
    assignment: str | AssignmentPolicy = "expected-distance",
    solver: str | DeterministicSolver = "gonzalez",
    epsilon: float | None = None,
) -> UncertainKCenterResult:
    """Solve the restricted assigned uncertain k-center problem (Theorem 2.2).

    Parameters
    ----------
    dataset:
        Uncertain points in a space supporting expected points (Euclidean /
        Minkowski).  For general metric spaces use
        :func:`repro.algorithms.metric_space.solve_metric_unrestricted`.
    k:
        Number of centers.
    assignment:
        ``"expected-distance"`` or ``"expected-point"`` (or an
        :class:`AssignmentPolicy` instance of one of those two rules).
    solver:
        Deterministic k-center solver to run on the expected points; a name
        from :data:`repro.algorithms.solvers.DETERMINISTIC_SOLVERS` or a
        callable.  Its certified factor ``f`` determines the guarantee.
    epsilon:
        Slack forwarded to the ``"epsilon"`` solver.
    """
    if not dataset.metric.supports_expected_point:
        raise NotSupportedError(
            "Theorem 2.2 needs expected points; use solve_metric_unrestricted for general metrics"
        )
    k = check_positive_int(k, name="k")
    policy = _resolve_policy(assignment)
    solve = resolve_solver(solver, epsilon=epsilon)

    representatives = expected_point_reduction(dataset)
    deterministic = solve(representatives, k, dataset.metric)
    centers = deterministic.centers
    labels = policy(dataset, centers)
    cost = expected_cost_assigned(dataset, centers, labels)

    factor = None
    if deterministic.approximation_factor is not None:
        factor = restricted_euclidean_factor(policy.name, deterministic.approximation_factor)
    return UncertainKCenterResult(
        centers=centers,
        expected_cost=cost,
        objective="restricted-assigned",
        assignment=labels,
        assignment_policy=policy.name,
        guaranteed_factor=factor,
        representatives=representatives,
        metadata={
            "theorem": "2.2",
            "deterministic": deterministic.metadata.get("algorithm"),
            "deterministic_factor": deterministic.approximation_factor,
            "deterministic_radius": deterministic.radius,
        },
    )


def _resolve_policy(assignment: str | AssignmentPolicy) -> AssignmentPolicy:
    if isinstance(assignment, AssignmentPolicy):
        if assignment.name not in _POLICIES:
            raise ValidationError(
                f"Theorem 2.2 covers the assignments {sorted(_POLICIES)}, not {assignment.name!r}"
            )
        return assignment
    if assignment not in _POLICIES:
        raise ValidationError(
            f"unknown assignment {assignment!r}; choose one of {sorted(_POLICIES)}"
        )
    return _POLICIES[assignment]()
