"""Approximation-factor bookkeeping for the paper's theorems.

Every theorem in the paper has the shape "run a deterministic k-center solver
with factor ``f`` on the representatives; the uncertain solution is within
``g(f)`` of the relevant optimum".  This module centralises the ``g``
functions, derived from the proofs in Section 3 so that plugging in any
deterministic factor (``f = 1`` exact, ``f = 1 + ε``, ``f = 2`` Gonzalez)
reproduces every entry of Table 1:

========================================  =================  ==============
Setting                                    formula ``g(f)``   Table 1 value
========================================  =================  ==============
1-center, Euclidean (Thm 2.1)              2                  2
restricted, Euclidean, ED (Thm 2.2)        4 + f              6 / 5+ε
restricted, Euclidean, EP (Thm 2.2)        2 + f              4 / 3+ε
unrestricted vs ED-restricted (Thm 2.3)    3                  3 (R^1 row)
unrestricted, Euclidean, ED (Thm 2.4)      4 + f              —
unrestricted, Euclidean, EP (Thm 2.5)      2 + f              4 / 3+ε
unrestricted, metric, ED (Thm 2.6)         5 + 2f             7+2ε
unrestricted, metric, OC (Thm 2.7)         3 + 2f             5+2ε
========================================  =================  ==============

(Gonzalez: ``f = 2``; the paper's ``(1+ε)`` black box: ``f = 1 + ε``.)
"""

from __future__ import annotations

from ..exceptions import ValidationError

#: Factor of Theorem 2.1 (expected point of any single uncertain point).
ONE_CENTER_EXPECTED_POINT_FACTOR = 2.0

#: Factor of Theorem 2.3 (optimal ED-restricted solution vs unrestricted).
RESTRICTED_ED_VS_UNRESTRICTED_FACTOR = 3.0


def restricted_euclidean_factor(assignment_policy: str, deterministic_factor: float) -> float:
    """Factor of Theorem 2.2 for the given assignment rule.

    ``4 + f`` for the expected-distance rule, ``2 + f`` for the
    expected-point rule.
    """
    f = _check_factor(deterministic_factor)
    if assignment_policy == "expected-distance":
        return 4.0 + f
    if assignment_policy == "expected-point":
        return 2.0 + f
    raise ValidationError(
        f"Theorem 2.2 covers the expected-distance and expected-point assignments, not {assignment_policy!r}"
    )


def unrestricted_euclidean_factor(assignment_policy: str, deterministic_factor: float) -> float:
    """Factor of Theorems 2.4 / 2.5 (Euclidean, vs the unrestricted optimum)."""
    f = _check_factor(deterministic_factor)
    if assignment_policy == "expected-distance":
        return 4.0 + f
    if assignment_policy == "expected-point":
        return 2.0 + f
    raise ValidationError(
        f"Theorems 2.4/2.5 cover the expected-distance and expected-point assignments, not {assignment_policy!r}"
    )


def unrestricted_metric_factor(assignment_policy: str, deterministic_factor: float) -> float:
    """Factor of Theorems 2.6 / 2.7 (general metric, vs the unrestricted optimum)."""
    f = _check_factor(deterministic_factor)
    if assignment_policy == "expected-distance":
        return 5.0 + 2.0 * f
    if assignment_policy == "one-center":
        return 3.0 + 2.0 * f
    raise ValidationError(
        f"Theorems 2.6/2.7 cover the expected-distance and one-center assignments, not {assignment_policy!r}"
    )


def _check_factor(factor: float) -> float:
    value = float(factor)
    if value < 1.0 - 1e-9:
        raise ValidationError(f"a deterministic approximation factor must be >= 1, got {value}")
    return max(value, 1.0)
