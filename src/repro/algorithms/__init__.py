"""The paper's algorithms: reductions with proven approximation factors."""

from .discrete_centers import solve_facility_restricted
from .extensions import solve_uncertain_kmeans, solve_uncertain_kmedian
from .factors import (
    ONE_CENTER_EXPECTED_POINT_FACTOR,
    RESTRICTED_ED_VS_UNRESTRICTED_FACTOR,
    restricted_euclidean_factor,
    unrestricted_euclidean_factor,
    unrestricted_metric_factor,
)
from .metric_space import solve_metric_unrestricted
from .one_center import (
    best_expected_point_one_center,
    exact_uncertain_one_center_discrete,
    expected_point_one_center,
    refined_uncertain_one_center,
)
from .restricted import solve_restricted_assigned
from .result import UncertainKCenterResult
from .solvers import DETERMINISTIC_SOLVERS, resolve_solver
from .unrestricted import solve_unrestricted_assigned

__all__ = [
    "UncertainKCenterResult",
    "expected_point_one_center",
    "best_expected_point_one_center",
    "exact_uncertain_one_center_discrete",
    "refined_uncertain_one_center",
    "solve_restricted_assigned",
    "solve_unrestricted_assigned",
    "solve_metric_unrestricted",
    "solve_uncertain_kmedian",
    "solve_uncertain_kmeans",
    "solve_facility_restricted",
    "restricted_euclidean_factor",
    "unrestricted_euclidean_factor",
    "unrestricted_metric_factor",
    "ONE_CENTER_EXPECTED_POINT_FACTOR",
    "RESTRICTED_ED_VS_UNRESTRICTED_FACTOR",
    "DETERMINISTIC_SOLVERS",
    "resolve_solver",
]
